"""Golden-digest compatibility: the IR fingerprinter == the pre-IR one.

``fixtures/golden_fingerprints.json`` was captured from the fingerprint
implementation that predates the plan-IR refactor (when payloads were
assembled ad hoc inside ``repro.reuse.fingerprint``). Artifacts in a
:class:`~repro.reuse.ReuseStore` are keyed by these digests and survive
process restarts via checkpoints, so the IR-derived fingerprinter must
reproduce every one of them byte-for-byte — otherwise an upgrade would
silently orphan every stored artifact.

If this test fails you have changed the canonical payload layout. That
is a **compatibility break** for persisted reuse stores, not a bug in
the test: do not regenerate the fixture unless you mean to invalidate
existing stores (and say so loudly in the changelog).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.reuse import map_prefix_fingerprint, pane_fingerprint, plan_fingerprint
from repro.workloads.queries import (
    aggregation_query,
    distinct_count_query,
    extrema_query,
    join_query,
)

FIXTURE = Path(__file__).parent / "fixtures" / "golden_fingerprints.json"

#: The figure workloads the fixture pins, built exactly as captured.
_WORKLOADS = {
    "aggregation": lambda: aggregation_query(60, 30, name="agg", num_reducers=4),
    "aggregation_keyed": lambda: aggregation_query(
        40, 10, name="agg2", key_field="user", num_reducers=2
    ),
    "join": lambda: join_query(60, 30, num_reducers=4),
    "distinct_count": lambda: distinct_count_query(60, 20, num_reducers=4),
    "extrema": lambda: extrema_query(60, 30, num_reducers=4),
}


def _golden():
    return json.loads(FIXTURE.read_text())


def test_fixture_covers_every_workload():
    assert set(_golden()) == set(_WORKLOADS)


@pytest.mark.parametrize("label", sorted(_WORKLOADS))
def test_plan_fingerprint_matches_golden(label):
    query = _WORKLOADS[label]()
    assert plan_fingerprint(query) == _golden()[label]["plan"]


@pytest.mark.parametrize("label", sorted(_WORKLOADS))
def test_pane_fingerprints_match_golden(label):
    query = _WORKLOADS[label]()
    golden_panes = _golden()[label]["panes"]
    assert set(golden_panes) == set(query.sources)
    for source in query.sources:
        assert pane_fingerprint(query, source) == golden_panes[source]


@pytest.mark.parametrize("label", sorted(_WORKLOADS))
def test_prefix_fingerprint_is_stable_and_distinct(label):
    """The new map-prefix scope must not collide with the pane scope.

    The prefix digest is new in the IR refactor (no pre-IR golden
    exists), so pin the weaker-but-load-bearing properties: it is
    deterministic across constructions, and it never equals the pane
    digest of the same pipeline (the scopes differ, so a registry key
    can never be mistaken for a reuse-store key).
    """
    a, b = _WORKLOADS[label](), _WORKLOADS[label]()
    for source in a.sources:
        fp = map_prefix_fingerprint(a, source)
        assert fp == map_prefix_fingerprint(b, source)
        assert fp != pane_fingerprint(a, source)
