"""Unit tests for the cross-query artifact store itself."""

from __future__ import annotations

import pytest

from repro.hadoop.config import small_test_config
from repro.hadoop.counters import Counters
from repro.hadoop.hdfs import SimulatedHDFS
from repro.hadoop.types import Record
from repro.reuse import ReuseLineage, ReuseStore, content_sha

FP = "f" * 64
OTHER_FP = "0" * 64


def fresh_hdfs() -> SimulatedHDFS:
    return SimulatedHDFS(small_test_config(4))


def lineage(sha: str = "dead", *, cost: float = 100.0) -> ReuseLineage:
    return ReuseLineage(
        producer="q1",
        job="j1",
        created_at=10.0,
        input_records=10,
        input_bytes=1000,
        input_sha=sha,
        recompute_cost=cost,
    )


def make_store(**kwargs) -> ReuseStore:
    return ReuseStore(hdfs=fresh_hdfs(), **kwargs)


def publish(store, t0, t1, *, fp=FP, source="s", rins=None, routs=None):
    rins = rins if rins is not None else [[("a", 1)], [("b", 2)]]
    return store.publish_pane(
        fp, source, t0, t1, rins, routs,
        pair_size=48, out_pair_size=48, lineage=lineage(),
    )


class TestPublishAndMatch:
    def test_exact_match_round_trips(self):
        store = make_store()
        rins = [[("a", 1), ("a", 2)], [("b", 3)]]
        routs = [[("a", 3)], [("b", 3)]]
        assert publish(store, 0.0, 900.0, rins=rins, routs=routs)
        chain = store.match_pane(FP, 0.0, 900.0, "s")
        assert chain is not None and len(chain) == 1
        got = store.read_pane(chain[0])
        assert got == (rins, routs)
        assert store.counters.as_dict()["reuse.hits"] == 1

    def test_republish_same_key_is_a_noop(self):
        store = make_store()
        assert publish(store, 0.0, 900.0)
        assert not publish(store, 0.0, 900.0)
        assert len(store) == 1

    def test_mismatched_rout_partitions_rejected(self):
        store = make_store()
        with pytest.raises(ValueError):
            publish(store, 0.0, 900.0, rins=[[("a", 1)], [("b", 2)]],
                    routs=[[("a", 1)]])

    def test_no_match_for_wrong_fingerprint_source_or_range(self):
        store = make_store()
        publish(store, 0.0, 900.0)
        assert store.match_pane(OTHER_FP, 0.0, 900.0, "s") is None
        assert store.match_pane(FP, 0.0, 900.0, "other") is None
        assert store.match_pane(FP, 900.0, 1800.0, "s") is None
        assert store.counters.as_dict()["reuse.misses"] == 3

    def test_subsumption_chain_tiles_the_coarser_pane(self):
        store = make_store()
        for k in range(4):
            publish(store, k * 900.0, (k + 1) * 900.0)
        chain = store.match_pane(FP, 0.0, 1800.0, "s")
        assert chain is not None
        assert [(e.t_start_ms, e.t_end_ms) for e in chain] == [
            (0, 900_000), (900_000, 1_800_000)
        ]
        # A gap in the tiling is a miss, not a partial serve.
        assert store.match_pane(FP, 0.0, 4500.0, "s") is None

    def test_non_dividing_granularity_is_not_chained(self):
        store = make_store()
        publish(store, 0.0, 700.0)
        publish(store, 700.0, 1400.0)
        assert store.match_pane(FP, 0.0, 1800.0, "s") is None

    def test_window_artifacts(self):
        store = make_store()
        bounds = {"s": (0.0, 3600.0)}
        pairs = [("k", 7), ("l", 9)]
        assert store.publish_window(
            FP, bounds, pairs, out_pair_size=48, lineage=lineage()
        )
        assert store.has_window(FP, bounds)
        entry = store.match_window(FP, bounds)
        assert entry is not None
        assert store.read_window(entry) == pairs
        assert store.match_window(FP, {"s": (0.0, 1800.0)}) is None


class TestChecksumsAndCorruption:
    def test_tampered_file_is_discarded_whole(self):
        store = make_store()
        publish(store, 0.0, 900.0)
        [entry] = store.entries()
        path = entry.paths()[0]
        store.hdfs.delete(path)
        store.hdfs.create(path, (Record(ts=0.0, value=("evil", 1), size=8),))
        assert store.read_pane(entry) is None
        assert len(store) == 0
        assert store.counters.as_dict()["reuse.corrupt_dropped"] == 1

    def test_missing_file_is_discarded_whole(self):
        store = make_store()
        publish(store, 0.0, 900.0)
        [entry] = store.entries()
        store.hdfs.delete(entry.paths()[-1])
        assert store.read_pane(entry) is None
        assert len(store) == 0


class TestBudget:
    def test_eviction_respects_capacity(self):
        pair_size = 48
        store = make_store(capacity_bytes=3 * 2 * pair_size)
        for k in range(5):
            publish(store, k * 900.0, (k + 1) * 900.0,
                    rins=[[("a", k)], [("b", k)]])
        assert store.total_bytes <= store.capacity_bytes
        counters = store.counters.as_dict()
        assert counters["reuse.evicted"] >= 1
        assert counters["reuse.publishes"] == 5

    def test_oversized_publication_is_rejected(self):
        store = make_store(capacity_bytes=10)
        assert not publish(store, 0.0, 900.0)
        assert len(store) == 0
        assert store.counters.as_dict()["reuse.admission_rejected"] == 1

    def test_recently_hit_entries_survive_eviction(self):
        pair_size = 48
        store = make_store(capacity_bytes=2 * 2 * pair_size)
        publish(store, 0.0, 900.0)
        publish(store, 900.0, 1800.0)
        # Touch the first entry so the second is the stale victim.
        [first] = store.match_pane(FP, 0.0, 900.0, "s")
        assert store.read_pane(first) is not None
        publish(store, 1800.0, 2700.0)
        keys = {e.t_start_ms for e in store.entries()}
        assert 0 in keys


class TestPersistenceAndAttach:
    def test_save_load_round_trip(self, tmp_path):
        store = make_store()
        rins = [[("a", 1)], [("b", 2)]]
        publish(store, 0.0, 900.0, rins=rins)
        blob = tmp_path / "store.bin"
        store.save(blob)
        revived = ReuseStore.load(blob, hdfs=fresh_hdfs())
        chain = revived.match_pane(FP, 0.0, 900.0, "s")
        assert chain is not None
        assert revived.read_pane(chain[0]) == (rins, None)

    def test_attach_migrates_artifacts_to_new_hdfs(self):
        store = make_store()
        rins = [[("a", 1)], [("b", 2)]]
        publish(store, 0.0, 900.0, rins=rins)
        new_hdfs = fresh_hdfs()
        store.attach(new_hdfs)
        assert store.hdfs is new_hdfs
        [entry] = store.entries()
        for path in entry.paths():
            assert new_hdfs.exists(path)
        assert store.read_pane(entry) == (rins, None)

    def test_attach_swaps_counter_bag(self):
        store = make_store()
        mine = Counters()
        store.attach(store.hdfs, counters=mine)
        publish(store, 0.0, 900.0)
        assert mine.as_dict()["reuse.publishes"] == 1


class TestContentSha:
    def test_order_sensitivity(self):
        assert content_sha([("a", 1), ("b", 2)]) != content_sha(
            [("b", 2), ("a", 1)]
        )

    def test_stability(self):
        assert content_sha([("a", 1)]) == content_sha([("a", 1)])
