"""The reuse differential oracle, fault-free and under chaos."""

from __future__ import annotations

from repro.bench.experiments import join_config
from repro.chaos import ChaosEvent, ChaosSchedule, run_reuse_differential

CONFIG = join_config(0.75, scale=0.05, num_windows=3)


class TestReuseDifferential:
    def test_fault_free_parity_and_hits(self):
        report = run_reuse_differential(CONFIG)
        assert report.ok, report.summary()
        assert report.mismatched_windows == []
        assert report.violations == []
        assert report.warm_hits > 0
        assert report.warm_reuse_counters["reuse.bytes_saved"] > 0
        assert "verdict: OK" in report.summary()

    def test_parity_holds_under_chaos_schedule(self):
        schedule = ChaosSchedule(
            seed=3,
            events=(
                ChaosEvent(at=40.0, kind="task-kill", prob=0.25),
                ChaosEvent(at=120.0, kind="cache-loss", cache_type=1, fraction=0.5),
                ChaosEvent(at=200.0, kind="task-kill", prob=0.0),
                ChaosEvent(at=400.0, kind="cache-corrupt", cache_type=2, fraction=0.5),
            ),
        )
        report = run_reuse_differential(CONFIG, schedule)
        assert report.mismatched_windows == []
        assert report.violations == []

    def test_random_seeded_schedules(self):
        for seed in (1, 2):
            schedule = ChaosSchedule.random(
                seed,
                horizon=CONFIG.horizon,
                num_nodes=CONFIG.cluster_config.num_nodes,
                num_windows=CONFIG.num_windows,
                slide=CONFIG.slide,
                events_per_window=1.0,
            )
            report = run_reuse_differential(CONFIG, schedule)
            assert report.mismatched_windows == [], report.summary()
            assert report.violations == [], report.summary()
