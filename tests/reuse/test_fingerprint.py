"""Property tests for plan fingerprint canonicalization.

The reuse tier is only sound if fingerprints behave like value
semantics: equal query *semantics* give equal digests (regardless of
names, rates, window parameters, or which process computed them), and
any semantic difference gives a different digest.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reuse import (
    FingerprintError,
    callable_fingerprint,
    pane_fingerprint,
    plan_fingerprint,
)
from repro.workloads.queries import aggregation_query, join_query

AGG_SOURCE = "wcc"

_KEY_FIELDS = ("object", "client")

_win_slide = st.tuples(
    st.integers(2, 12), st.integers(1, 6)
).map(lambda ws: (ws[0] * 300.0, min(ws[0], ws[1]) * 300.0))


def _fingerprints_of(query):
    return (
        plan_fingerprint(query),
        tuple(pane_fingerprint(query, src) for src in query.sources),
    )


def _agg_fingerprints(win, slide, name, key_field, num_reducers):
    """Module-level so a worker process can import and run it."""
    query = aggregation_query(
        win, slide, name=name, key_field=key_field, num_reducers=num_reducers
    )
    return _fingerprints_of(query)


class TestEqualSemanticsEqualDigests:
    @given(
        ws=_win_slide,
        key_field=st.sampled_from(_KEY_FIELDS),
        num_reducers=st.integers(1, 8),
        names=st.tuples(st.text(min_size=1, max_size=8), st.text(min_size=1, max_size=8)),
    )
    @settings(max_examples=50, deadline=None)
    def test_independent_constructions_agree(
        self, ws, key_field, num_reducers, names
    ):
        win, slide = ws
        a = aggregation_query(
            win, slide, name=names[0], key_field=key_field,
            num_reducers=num_reducers,
        )
        b = aggregation_query(
            win, slide, name=names[1], key_field=key_field,
            num_reducers=num_reducers,
        )
        assert _fingerprints_of(a) == _fingerprints_of(b)

    @given(ws_a=_win_slide, ws_b=_win_slide)
    @settings(max_examples=30, deadline=None)
    def test_window_params_never_enter_the_digest(self, ws_a, ws_b):
        # Artifacts are keyed by time range, not win/slide — subsumption
        # across window geometries depends on this exclusion.
        a = aggregation_query(*ws_a)
        b = aggregation_query(*ws_b)
        assert _fingerprints_of(a) == _fingerprints_of(b)

    @given(ws=_win_slide)
    @settings(max_examples=20, deadline=None)
    def test_pickle_round_trip_is_stable(self, ws):
        query = join_query(*ws, num_reducers=4)
        clone = pickle.loads(pickle.dumps(query))
        assert _fingerprints_of(query) == _fingerprints_of(clone)


class TestDistinctSemanticsDistinctDigests:
    @given(ws=_win_slide, reducers=st.tuples(st.integers(1, 8), st.integers(1, 8)))
    @settings(max_examples=30, deadline=None)
    def test_num_reducers_distinguishes(self, ws, reducers):
        a = aggregation_query(*ws, num_reducers=reducers[0])
        b = aggregation_query(*ws, num_reducers=reducers[1])
        same = reducers[0] == reducers[1]
        assert (plan_fingerprint(a) == plan_fingerprint(b)) == same
        assert (
            pane_fingerprint(a, AGG_SOURCE) == pane_fingerprint(b, AGG_SOURCE)
        ) == same

    def test_key_field_distinguishes(self):
        a = aggregation_query(3600.0, 900.0, key_field="object")
        b = aggregation_query(3600.0, 900.0, key_field="client")
        assert plan_fingerprint(a) != plan_fingerprint(b)

    def test_query_kinds_distinguish(self):
        agg = aggregation_query(3600.0, 900.0)
        join = join_query(3600.0, 900.0)
        assert plan_fingerprint(agg) != plan_fingerprint(join)


class TestCrossProcessStability:
    def test_worker_pool_digests_match_parent(self):
        args = (3600.0, 900.0, "other-name", "object", 4)
        local = _agg_fingerprints(*args)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_agg_fingerprints, *args).result(timeout=60)
        assert local == remote


class TestUnfingerprintable:
    def test_lambda_raises(self):
        with pytest.raises(FingerprintError):
            callable_fingerprint(lambda r: r)

    def test_local_function_raises(self):
        def local_mapper(record):
            yield record.value, 1

        with pytest.raises(FingerprintError):
            callable_fingerprint(local_mapper)

    def test_bound_method_raises(self):
        with pytest.raises(FingerprintError):
            callable_fingerprint("abc".upper)

    def test_unknown_source_raises(self):
        query = aggregation_query(3600.0, 900.0)
        with pytest.raises(KeyError):
            pane_fingerprint(query, "nonexistent")


class TestCallableCanonicalization:
    def test_instance_config_is_captured(self):
        from repro.workloads.queries import _AggMapper

        a = callable_fingerprint(_AggMapper("object"))
        b = callable_fingerprint(_AggMapper("object"))
        c = callable_fingerprint(_AggMapper("client"))
        assert a == b
        assert a != c
