"""Runtime integration: seeding, window short-circuit, digest parity.

Every test here enforces the tier's core contract — the store may only
ever change *when* an answer is computed, never *what* it is — and the
satellite regression that externally-seeded panes are indistinguishable
from locally-computed ones in the status matrix's ``remaining_uses``
accounting.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.experiments import aggregation_config, join_config
from repro.bench.harness import ExperimentConfig, build_workload, run_redoop_series
from repro.bench.reuse import run_warm_cold
from repro.core.runtime import RedoopRuntime
from repro.hadoop.cluster import Cluster
from repro.reuse import ReuseStore

SCALE = 0.05


def drive(
    config: ExperimentConfig,
    store: Optional[ReuseStore],
    workload,
) -> tuple:
    """Run one query to completion; returns (runtime, digests, snapshots).

    ``snapshots`` holds, per recurrence, the controller's
    ``remaining_uses`` for every signature pid — the matrix-accounting
    surface the eviction policies rank by.
    """
    cluster = Cluster(config.cluster_config, seed=config.seed)
    runtime = RedoopRuntime(cluster, reuse_store=store)
    query = config.build_query()
    runtime.register_query(query, {s: config.rate for s in config.sources})
    pending = sorted(
        (item for items in workload.values() for item in items),
        key=lambda bw: (bw[0].t_end, bw[0].source),
    )
    cursor = 0
    digests: List[tuple] = []
    snapshots: List[dict] = []
    for recurrence in range(1, config.num_windows + 1):
        due = query.execution_time(recurrence)
        while cursor < len(pending) and pending[cursor][0].t_end <= due + 1e-9:
            runtime.ingest(*pending[cursor])
            cursor += 1
        result = runtime.run_recurrence(query.name, recurrence)
        digests.append(tuple(sorted(map(repr, result.output))))
        pids = sorted({s.pid for s in runtime.controller.signatures()})
        snapshots.append(
            {pid: runtime.controller.remaining_uses(pid) for pid in pids}
        )
    return runtime, digests, snapshots


class TestWarmWindowShortCircuit:
    def test_second_tenant_is_served_from_window_artifacts(self):
        report = run_warm_cold(join_config(0.75, scale=SCALE, num_windows=3))
        assert report.digests_equal
        assert report.reuse_counters["reuse.window_hits"] == 3
        assert report.warm_avg_response < report.cold_avg_response / 2
        assert report.bytes_saved > 0
        assert report.ok

    def test_publication_is_timing_neutral(self):
        # The cold (publishing) run must clock exactly like a store-free
        # run: publication happens outside the measured window path.
        report = run_warm_cold(
            aggregation_config(0.75, scale=SCALE, num_windows=3)
        )
        assert report.off.response_times() == report.cold.response_times()


class TestPaneSubsumption:
    def _geometry_pair(self):
        producer = ExperimentConfig(
            kind="aggregation", win=3600.0, overlap=0.75, num_windows=5,
            rate=30_000_000.0 * SCALE, record_size=1_000_000, seed=7,
        )
        consumer = ExperimentConfig(
            kind="aggregation", win=5400.0, overlap=2 / 3, num_windows=2,
            rate=30_000_000.0 * SCALE, record_size=1_000_000, seed=7,
        )
        return producer, consumer

    def test_finer_panes_tile_a_coarser_consumer(self):
        producer_cfg, consumer_cfg = self._geometry_pair()
        workload = build_workload(producer_cfg)
        store = ReuseStore()
        drive(producer_cfg, store, workload)
        warm_rt, warm_digests, _ = drive(consumer_cfg, store, workload)
        off_rt, off_digests, _ = drive(consumer_cfg, None, workload)
        assert warm_digests == off_digests
        counters = warm_rt.counters.as_dict()
        assert counters["reuse.panes_seeded"] > 0
        assert counters["reuse.bytes_saved"] > 0

    def test_seeded_panes_match_local_remaining_uses(self):
        # Satellite regression: a pane seeded from the store must be
        # indistinguishable from a locally-computed one in the status
        # matrix's remaining_uses accounting, at every recurrence.
        producer_cfg, consumer_cfg = self._geometry_pair()
        workload = build_workload(producer_cfg)
        store = ReuseStore()
        drive(producer_cfg, store, workload)
        warm_rt, _, warm_snapshots = drive(consumer_cfg, store, workload)
        assert warm_rt.counters.as_dict()["reuse.panes_seeded"] > 0
        _, _, off_snapshots = drive(consumer_cfg, None, workload)
        assert warm_snapshots == off_snapshots


class TestLineageGuard:
    def test_different_data_is_never_served(self):
        # Same plan, same time ranges, different workload: the input-sha
        # lineage check must refuse every match and recompute honestly.
        config = aggregation_config(0.75, scale=SCALE, num_windows=3)
        other = build_workload(
            aggregation_config(0.75, scale=SCALE, num_windows=3, seed=11)
        )
        mine = build_workload(config)
        store = ReuseStore()
        cluster = Cluster(config.cluster_config, seed=config.seed)
        producer_rt = RedoopRuntime(cluster, reuse_store=store)
        query = config.build_query()
        producer_rt.register_query(
            query, {s: config.rate for s in config.sources}
        )
        pending = sorted(
            (item for items in other.values() for item in items),
            key=lambda bw: (bw[0].t_end, bw[0].source),
        )
        cursor = 0
        for recurrence in range(1, config.num_windows + 1):
            due = query.execution_time(recurrence)
            while (
                cursor < len(pending)
                and pending[cursor][0].t_end <= due + 1e-9
            ):
                producer_rt.ingest(*pending[cursor])
                cursor += 1
            producer_rt.run_recurrence(query.name, recurrence)
        assert len(store) > 0

        warm_rt, warm_digests, _ = drive(config, store, mine)
        _, off_digests, _ = drive(config, None, mine)
        assert warm_digests == off_digests
        counters = warm_rt.counters.as_dict()
        assert counters["reuse.lineage_mismatches"] > 0
        assert counters.get("reuse.window_hits", 0) == 0
        assert counters.get("reuse.panes_seeded", 0) == 0


class TestDigestParityAcrossFigures:
    def test_fig6_and_fig7_style_workloads(self):
        for config in (
            aggregation_config(0.9, scale=SCALE, num_windows=3),
            aggregation_config(0.1, scale=SCALE, num_windows=3),
            join_config(0.5, scale=SCALE, num_windows=3),
        ):
            report = run_warm_cold(config)
            assert report.digests_equal, config.kind
            assert report.hits > 0, config.kind


class TestSeriesHarnessThreading:
    def test_run_redoop_series_accepts_a_store(self):
        config = aggregation_config(0.5, scale=SCALE, num_windows=2)
        workload = build_workload(config)
        store = ReuseStore()
        cold = run_redoop_series(
            config, label="cold", workload=workload, reuse_store=store
        )
        warm = run_redoop_series(
            config, label="warm", workload=workload, reuse_store=store
        )
        assert cold.output_digests == warm.output_digests
        assert warm.runtime_counters["reuse.hits"] > 0
