"""The backend parity oracle: serial vs process digests, byte-identical.

The same pattern as the chaos differential oracle: run one workload
twice on independent, identically-seeded clusters — once per backend —
and require every per-window output digest to match. Any divergence is
a determinism bug in the backend (ordering, pickling, per-process
state), never noise.

Covers the benchmark figure workloads (WCC aggregation, FFG join, the
fig9 FFG aggregation), the plain-Hadoop baseline driver, a chaos
schedule (faults + parallel user-code composed), and a mid-run
checkpoint/restore on the process backend.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ExperimentConfig,
    build_workload,
    run_hadoop_series,
    run_redoop_series,
)
from repro.chaos import ChaosEvent, ChaosSchedule, run_differential
from repro.exec import ProcessPoolBackend
from repro.hadoop import small_test_config


def mini_config(kind: str = "aggregation", **overrides) -> ExperimentConfig:
    defaults = dict(
        kind=kind,
        win=40.0,
        overlap=0.5,
        num_windows=4,
        rate=1_500_000.0,
        record_size=150_000,
        num_reducers=4,
        cluster_config=small_test_config(),
        seed=11,
        batches_per_pane=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture
def process_backend():
    backend = ProcessPoolBackend(workers=2)
    yield backend
    backend.close()


class TestRedoopParity:
    @pytest.mark.parametrize(
        "kind", ["aggregation", "join", "ffg-aggregation"]
    )
    def test_figure_workload_digests_identical(self, kind, process_backend):
        config = mini_config(kind)
        workload = build_workload(config)
        serial = run_redoop_series(config, workload=workload)
        parallel = run_redoop_series(
            config, workload=workload, backend=process_backend
        )
        assert serial.output_digests == parallel.output_digests
        # Virtual time is backend-independent too: the cost model, not
        # the wall clock, decides response times.
        assert [w.response_time for w in serial.windows] == [
            w.response_time for w in parallel.windows
        ]

    def test_adaptive_mode_parity(self, process_backend):
        config = mini_config("aggregation")
        workload = build_workload(config)
        serial = run_redoop_series(config, adaptive=True, workload=workload)
        parallel = run_redoop_series(
            config, adaptive=True, workload=workload, backend=process_backend
        )
        assert serial.output_digests == parallel.output_digests

    def test_exec_counters_present_only_on_request(self, process_backend):
        config = mini_config("aggregation")
        workload = build_workload(config)
        series = run_redoop_series(
            config, workload=workload, backend=process_backend
        )
        exec_counters = {
            k for k in series.runtime_counters if k.startswith("exec.")
        }
        assert "exec.batches" in exec_counters
        assert "exec.tasks_dispatched" in exec_counters

    def test_counter_bag_is_deterministic_across_backends(
        self, process_backend
    ):
        """The whole counter snapshot — exec.* included — is identical
        between backends and across repeat runs: physical measurements
        never leak into it."""
        config = mini_config("aggregation")
        workload = build_workload(config)
        serial = run_redoop_series(config, workload=workload)
        parallel = run_redoop_series(
            config, workload=workload, backend=process_backend
        )
        again = run_redoop_series(
            config, workload=workload, backend=process_backend
        )
        assert parallel.runtime_counters == again.runtime_counters
        non_exec = lambda c: {  # noqa: E731
            k: v for k, v in c.items() if not k.startswith("exec.")
        }
        assert non_exec(serial.runtime_counters) == non_exec(
            parallel.runtime_counters
        )


class TestHadoopParity:
    def test_baseline_driver_digests_identical(self, process_backend):
        config = mini_config("join")
        workload = build_workload(config)
        serial = run_hadoop_series(config, workload=workload)
        parallel = run_hadoop_series(
            config, workload=workload, backend=process_backend
        )
        assert serial.output_digests == parallel.output_digests


class TestChaosParity:
    def test_differential_oracle_holds_on_process_backend(
        self, process_backend
    ):
        """Faults and parallel user-code composed: the chaos run on the
        process backend must still match its fault-free baseline."""
        schedule = ChaosSchedule(
            seed=3,
            events=(
                ChaosEvent(at=45.0, kind="task-kill", prob=0.3),
                ChaosEvent(at=55.0, kind="node-kill"),
                ChaosEvent(at=62.0, kind="cache-loss", fraction=0.4),
                ChaosEvent(at=70.0, kind="node-recover"),
            ),
        )
        report = run_differential(
            mini_config("aggregation"),
            schedule,
            backend=process_backend,
        )
        assert report.ok
        assert report.mismatched_windows == []

    def test_chaos_digests_match_across_backends(self, process_backend):
        """The *chaos* series itself is backend-deterministic: same
        schedule, same faults, same digests on serial and process."""
        from repro.chaos import run_chaos_series

        config = mini_config("aggregation")
        schedule = ChaosSchedule(
            seed=5,
            events=(
                ChaosEvent(at=45.0, kind="cache-loss", fraction=0.5),
                ChaosEvent(at=65.0, kind="task-kill", prob=0.2),
            ),
        )
        workload = build_workload(config)
        serial = run_chaos_series(config, schedule, workload=workload)
        parallel = run_chaos_series(
            config, schedule, workload=workload, backend=process_backend
        )
        assert (
            serial.series.output_digests == parallel.series.output_digests
        )


class TestCheckpointParity:
    def test_mid_run_checkpoint_restore_on_process_backend(self, tmp_path):
        """Kill a process-backend server mid-run, restore, finish: the
        digests must equal an uninterrupted serial run's."""
        from repro.bench.service import (
            ServiceScenario,
            build_server,
            drive_scenario,
        )
        from repro.service import QueryServer, latest_checkpoint

        scenario = ServiceScenario(
            tenants=2, recurrences=6, rate=150_000.0, seed=3
        )

        # Uninterrupted serial reference.
        want = drive_scenario(scenario, build_server(scenario)).digests

        # Process-backend run, killed after 3 recurrences.
        backend = ProcessPoolBackend(workers=2)
        try:
            server = build_server(
                scenario,
                checkpoint_dir=tmp_path,
                checkpoint_every=1,
                backend=backend,
            )
            drive_scenario(scenario, server, stop_after_recurrences=3)
        finally:
            backend.close()

        # Restore (deserialises with pool handles stripped) and finish
        # on a fresh process backend.
        path = latest_checkpoint(tmp_path)
        assert path is not None
        restored = QueryServer.restore(path)
        resumed_backend = ProcessPoolBackend(workers=2)
        try:
            restored.runtime.backend = resumed_backend
            resumed = drive_scenario(scenario, restored)
        finally:
            resumed_backend.close()
        assert resumed.digests == want
