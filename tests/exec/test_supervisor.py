"""The worker supervision ladder, exercised with real process faults.

Every test here crashes, hangs, or starves an actual OS worker and
asserts the supervisor's contract: correct results in submission
order, bounded wall-clock (a hang never outlives the batch deadline),
recovery visible in ``exec.*`` counters and the ``exec.recovery``
instant, and a terminal :class:`WorkerFaultError` once the rebuild
budget is gone. Deadlines are kept small so no test can block longer
than its configured deadline plus one retry round.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.exec import (
    ProcessPoolBackend,
    SupervisionConfig,
    WorkerFault,
    WorkerFaultError,
    WorkerFaultPlan,
    WorkerSupervisor,
)
from repro.exec.worker_faults import faulty_invoke
from repro.hadoop.counters import Counters
from repro.trace import Tracer


def square(x: int) -> int:
    return x * x


def boom(x: int) -> int:
    if x == 3:
        raise ValueError("user code exploded on 3")
    return x


class TestSupervisionConfig:
    def test_backoff_ladder_is_deterministic_and_capped(self):
        cfg = SupervisionConfig(
            backoff_base=0.01, backoff_factor=2.0, backoff_cap=0.04
        )
        assert [cfg.backoff(r) for r in (1, 2, 3, 4)] == [
            0.01,
            0.02,
            0.04,
            0.04,
        ]
        # Same inputs, same schedule — no RNG, no clock.
        assert cfg.backoff(2) == cfg.backoff(2)

    def test_hang_seconds_clears_the_deadline(self):
        cfg = SupervisionConfig(batch_deadline=0.5)
        assert cfg.hang_seconds() > cfg.batch_deadline

    def test_hang_seconds_refuses_undeadlined_pool(self):
        with pytest.raises(ValueError, match="batch deadline"):
            SupervisionConfig(batch_deadline=None).hang_seconds()

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisionConfig(batch_deadline=0.0)
        with pytest.raises(ValueError):
            SupervisionConfig(max_task_retries=-1)
        with pytest.raises(ValueError):
            SupervisionConfig(max_pool_rebuilds=-1)


class TestWorkerFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown worker fault"):
            WorkerFault("segfault")

    def test_hang_and_slow_need_durations(self):
        with pytest.raises(ValueError, match="positive seconds"):
            WorkerFault("hang")
        with pytest.raises(ValueError, match="positive seconds"):
            WorkerFault("slow", seconds=0.0)

    def test_faultless_invoke_matches_timed_payload(self):
        pid, ident, wall, result = faulty_invoke(None, square, (4,), {})
        assert result == 16
        assert wall >= 0
        assert isinstance(pid, int) and isinstance(ident, int)


class TestWorkerFaultPlan:
    def test_assignment_is_deterministic(self):
        plan = WorkerFaultPlan(seed=7, kills=2, hangs=1, span=16)
        a = plan.assign(0, hang_seconds=1.0)
        b = plan.assign(0, hang_seconds=1.0)
        assert a == b
        assert len(a) == 3
        assert sorted(f.kind for f in a.values()) == ["hang", "kill", "kill"]

    def test_assignment_shifts_with_start_ordinal(self):
        plan = WorkerFaultPlan(seed=7, kills=2, span=16)
        base = plan.assign(0, hang_seconds=1.0)
        shifted = plan.assign(10, hang_seconds=1.0)
        assert set(shifted) == {k + 10 for k in base}

    def test_faults_must_fit_the_span(self):
        with pytest.raises(ValueError, match="do not fit"):
            WorkerFaultPlan(seed=1, kills=3, span=2)

    def test_plan_pickles(self):
        plan = WorkerFaultPlan(seed=1, kills=1, hangs=1, span=8)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestKillRecovery:
    def test_crashed_worker_is_recovered_invisibly(self):
        counters = Counters()
        tracer = Tracer()
        backend = ProcessPoolBackend(
            workers=2, batch_deadline=10.0, backoff_base=0.01
        )
        try:
            backend.inject_worker_faults("kill")
            out = backend.run_tasks(
                square,
                [((i,), {}) for i in range(12)],
                phase="map",
                counters=counters,
                tracer=tracer,
                now=40.0,
            )
        finally:
            backend.close()
        assert out == [i * i for i in range(12)]
        assert counters.get("exec.worker_lost") >= 1
        assert counters.get("exec.pool_rebuilds") >= 1
        assert counters.get("exec.retries") >= 1
        assert backend.pool_healthy()
        recovery = next(
            e
            for e in tracer.events(category="exec")
            if e.name == "exec.recovery"
        )
        # Physical recovery facts ride the instant at *virtual* time.
        assert recovery.time == 40.0
        assert recovery.attrs["worker_lost"] >= 1
        assert recovery.attrs["backoff_ms"] > 0

    def test_retries_run_clean_so_every_fault_is_recoverable(self):
        backend = ProcessPoolBackend(
            workers=2, batch_deadline=10.0, backoff_base=0.01
        )
        try:
            backend.inject_worker_faults("kill", count=2)
            out = backend.run_tasks(square, [((i,), {}) for i in range(8)])
            # Both faults were consumed by first attempts; none linger.
            assert backend.pending_worker_faults() == 0
        finally:
            backend.close()
        assert out == [i * i for i in range(8)]


class TestHangReap:
    def test_hung_worker_is_reaped_at_the_deadline(self):
        counters = Counters()
        tracer = Tracer()
        backend = ProcessPoolBackend(
            workers=2, batch_deadline=0.5, backoff_base=0.01
        )
        hang_sleep = backend.supervision.hang_seconds()
        try:
            backend.inject_worker_faults("hang")
            t0 = time.monotonic()
            out = backend.run_tasks(
                square,
                [((i,), {}) for i in range(6)],
                phase="map",
                counters=counters,
                tracer=tracer,
                now=1.0,
            )
            elapsed = time.monotonic() - t0
        finally:
            backend.close()
        assert out == [i * i for i in range(6)]
        # The reap ended the batch long before the hang would have.
        assert elapsed < hang_sleep
        assert counters.get("exec.worker_lost") >= 1
        recovery = next(
            e
            for e in tracer.events(category="exec")
            if e.name == "exec.recovery"
        )
        assert recovery.attrs["deadline_reaps"] >= 1


class TestQuarantine:
    def test_exhausted_task_runs_serially_in_process(self):
        counters = Counters()
        backend = ProcessPoolBackend(
            workers=2,
            batch_deadline=10.0,
            max_task_retries=0,
            backoff_base=0.01,
        )
        try:
            backend.inject_worker_faults("kill")
            out = backend.run_tasks(
                square, [((i,), {}) for i in range(4)], counters=counters
            )
        finally:
            backend.close()
        assert out == [0, 1, 4, 9]
        # With zero retries every surviving loss goes straight to the
        # in-process quarantine — and still produces correct output.
        assert counters.get("exec.quarantined") >= 1
        assert counters.get("exec.retries") == 0

    def test_genuine_user_exception_propagates_untouched(self):
        backend = ProcessPoolBackend(workers=2, batch_deadline=10.0)
        try:
            with pytest.raises(ValueError, match="exploded on 3"):
                backend.run_tasks(boom, [((i,), {}) for i in range(5)])
        finally:
            backend.close()


class TestTerminalPath:
    def test_spent_rebuild_budget_raises_worker_fault_error(self):
        counters = Counters()
        backend = ProcessPoolBackend(
            workers=2,
            batch_deadline=10.0,
            max_pool_rebuilds=0,
            backoff_base=0.01,
        )
        try:
            backend.inject_worker_faults("kill")
            with pytest.raises(WorkerFaultError) as err:
                backend.run_tasks(
                    square, [((i,), {}) for i in range(6)], counters=counters
                )
            assert err.value.tasks_lost >= 1
            assert err.value.attempts >= 1
            # Partial recovery accounting is flushed before the raise.
            assert counters.get("exec.worker_lost") >= 1
            assert counters.get("exec.pool_rebuilds") == 1
            # The broken pool was reaped, not leaked; the backend can
            # still serve the next batch on a fresh pool.
            assert backend.pool_healthy()
            assert backend.run_tasks(square, [((5,), {})]) == [25]
        finally:
            backend.close()


class TestArming:
    def test_arm_validation(self):
        sup = WorkerSupervisor(2)
        with pytest.raises(ValueError, match="unknown worker fault"):
            sup.arm("meteor")
        with pytest.raises(ValueError, match=">= 1"):
            sup.arm("kill", count=0)

    def test_hang_refuses_to_arm_without_a_deadline(self):
        sup = WorkerSupervisor(2, SupervisionConfig(batch_deadline=None))
        with pytest.raises(ValueError, match="batch deadline"):
            sup.arm("hang")
        with pytest.raises(ValueError, match="batch deadline"):
            sup.arm_plan(WorkerFaultPlan(seed=1, hangs=1, span=4))

    def test_arming_is_cumulative_and_drainable(self):
        sup = WorkerSupervisor(2)
        sup.arm("kill", count=2)
        sup.arm("slow")
        assert sup.pending_faults() == 3
        assert sup.drain_faults() == 3
        assert sup.pending_faults() == 0


class TestCheckpointState:
    def test_supervisor_strips_transients(self):
        backend = ProcessPoolBackend(workers=2)
        try:
            backend.run_tasks(square, [((i,), {}) for i in range(4)])
            backend.inject_worker_faults("kill", count=2)
            revived = pickle.loads(pickle.dumps(backend))
        finally:
            backend.drain_worker_faults()
            backend.close()
        sup = revived._supervisor
        assert sup._pool is None
        assert sup._unavailable is False
        assert sup._armed == {}
        assert sup._ordinal == 0
        assert sup.last_stats is None
        # A restored supervisor serves batches on a fresh pool.
        try:
            assert revived.run_tasks(square, [((7,), {})]) == [49]
        finally:
            revived.close()
