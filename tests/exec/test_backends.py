"""Unit tests for the execution backends themselves.

The parity oracle (``test_parity.py``) proves end-to-end neutrality;
these tests pin the mechanics the oracle relies on: submission-order
results, the fallback ladder, accounting, and checkpoint pickling.
"""

from __future__ import annotations

import pickle

import pytest

from repro.exec import (
    BACKENDS,
    ExecBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from repro.hadoop.counters import Counters
from repro.trace import Tracer


def square(x: int) -> int:
    return x * x


def describe(x) -> str:
    return type(x).__name__


def offset(x: int, *, base: int = 0) -> int:
    return base + x


class TestMakeBackend:
    def test_registry_covers_both_backends(self):
        assert BACKENDS == ("serial", "process")
        assert isinstance(make_backend("serial"), SerialBackend)
        backend = make_backend("process", workers=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 2
        backend.close()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("gpu")

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=0)


class TestResultOrdering:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_results_in_submission_order(self, name):
        backend = make_backend(name, workers=2)
        try:
            calls = [((i,), {}) for i in range(20)]
            assert backend.run_tasks(square, calls) == [
                i * i for i in range(20)
            ]
        finally:
            backend.close()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_kwargs_are_forwarded(self, name):
        backend = make_backend(name, workers=2)
        try:
            out = backend.run_tasks(
                offset, [((i,), {"base": 100}) for i in range(5)]
            )
            assert out == [100, 101, 102, 103, 104]
        finally:
            backend.close()

    def test_empty_batch_is_a_noop(self):
        counters = Counters()
        backend = SerialBackend()
        assert backend.run_tasks(square, [], counters=counters) == []
        assert counters.get("exec.batches") == 0


class TestCounters:
    def test_serial_accounting(self):
        counters = Counters()
        tracer = Tracer()
        SerialBackend().run_tasks(
            square, [((i,), {}) for i in range(3)], phase="map",
            counters=counters, tracer=tracer, now=1.0,
        )
        assert counters.get("exec.batches") == 1
        assert counters.get("exec.tasks_dispatched") == 3
        assert counters.get("exec.tasks_completed") == 3
        # Physical wall time is NOT a counter (the counter bag must be
        # bit-deterministic across repeat runs); it rides the instant.
        assert counters.get("exec.wall_seconds_map") == 0
        batch = next(
            e for e in tracer.events(category="exec") if e.name == "exec.batch"
        )
        assert batch.attrs["wall_ms"] >= 0

    def test_process_accounting_and_queue_peak(self):
        counters = Counters()
        tracer = Tracer()
        backend = ProcessPoolBackend(workers=2)
        try:
            backend.run_tasks(
                square, [((i,), {}) for i in range(16)], phase="reduce",
                counters=counters, tracer=tracer, now=1.0,
            )
        finally:
            backend.close()
        assert counters.get("exec.batches") == 1
        assert counters.get("exec.tasks_dispatched") == 16
        # 16 tasks on 2 workers must have queued beyond the slots —
        # reported on the batch instant, not the deterministic counters.
        batch = next(
            e for e in tracer.events(category="exec") if e.name == "exec.batch"
        )
        assert batch.attrs["queue_peak"] > 0
        assert counters.get("exec.queue_depth_peak") == 0
        # Picklable workload: the process path, not a fallback.
        assert counters.get("exec.pickle_fallbacks") == 0

    def test_pickle_fallback_counts_and_still_computes(self):
        counters = Counters()
        backend = ProcessPoolBackend(workers=2)
        unpicklable = lambda x: x + 1  # noqa: E731 - deliberately a lambda
        try:
            out = backend.run_tasks(
                unpicklable, [((i,), {}) for i in range(4)],
                counters=counters,
            )
        finally:
            backend.close()
        assert out == [1, 2, 3, 4]
        assert counters.get("exec.pickle_fallbacks") == 1

    def test_pickle_probe_covers_the_whole_batch(self):
        # The fn and the first call are picklable; a *later* call is
        # not. Probing only calls[0] would ship the batch to the
        # process pool and die mid-gather with a PicklingError — the
        # probe must cover every call's arguments.
        import threading

        counters = Counters()
        backend = ProcessPoolBackend(workers=2)
        calls = [(("fine",), {}), ((threading.Lock(),), {})]
        try:
            out = backend.run_tasks(describe, calls, counters=counters)
        finally:
            backend.close()
        assert out == ["str", "lock"]
        assert counters.get("exec.pickle_fallbacks") == 1


class TestTraceInstants:
    def test_batch_and_worker_instants_at_virtual_time(self):
        tracer = Tracer()
        SerialBackend().run_tasks(
            square, [((1,), {})], phase="map", tracer=tracer, now=42.0
        )
        events = tracer.events(category="exec")
        names = {e.name for e in events}
        assert names == {"exec.batch", "exec.worker"}
        assert all(e.time == 42.0 for e in events)
        batch = next(e for e in events if e.name == "exec.batch")
        assert batch.attrs["phase"] == "map"
        assert batch.attrs["backend"] == "serial"
        worker = next(e for e in events if e.name == "exec.worker")
        assert worker.attrs["worker"] == 0

    def test_no_tracer_no_instants_needed(self):
        # now=None (no virtual timestamp) must not emit or crash.
        tracer = Tracer()
        SerialBackend().run_tasks(square, [((1,), {})], tracer=tracer)
        assert tracer.events(category="exec") == []


class TestCheckpointPickling:
    def test_backend_pickles_without_live_pools(self):
        backend = ProcessPoolBackend(workers=2)
        try:
            backend.run_tasks(square, [((i,), {}) for i in range(4)])
            revived = pickle.loads(pickle.dumps(backend))
        finally:
            backend.close()
        assert isinstance(revived, ProcessPoolBackend)
        assert revived.workers == 2
        assert revived._pool is None
        assert revived._thread_pool is None
        # And the revived backend still executes.
        try:
            assert revived.run_tasks(square, [((3,), {})]) == [9]
        finally:
            revived.close()


class TestLifecycle:
    def test_close_is_idempotent(self):
        backend = ProcessPoolBackend(workers=2)
        backend.run_tasks(square, [((i,), {}) for i in range(4)])
        backend.close()
        backend.close()  # second close is a no-op, not an error
        assert backend._pool is None
        assert backend._thread_pool is None

    def test_close_survives_a_failing_process_pool_shutdown(self):
        # Exception-safety: the first pool's shutdown raising must not
        # leak the second. The thread pool is torn down even when the
        # supervisor's close explodes, and the error still surfaces.
        backend = ProcessPoolBackend(workers=2)
        backend.run_tasks(square, [((1,), {})])  # spin up process pool
        unpicklable = lambda x: x  # noqa: E731 - forces the thread path
        backend.run_tasks(unpicklable, [((1,), {})])
        threads = backend._thread_pool
        assert threads is not None

        def explode():
            raise RuntimeError("shutdown failed")

        backend._supervisor.close()  # release the real pool first
        backend._supervisor.close = explode
        with pytest.raises(RuntimeError, match="shutdown failed"):
            backend.close()
        assert backend._thread_pool is None
        assert threads._shutdown  # the second pool did not leak

    def test_restored_backend_reprobes_availability_and_resets_lanes(self):
        backend = ProcessPoolBackend(workers=2)
        try:
            backend.run_tasks(square, [((i,), {}) for i in range(6)])
            assert backend._lane_ids  # lanes were assigned
            # Simulate a degraded sandbox: pools could not start here.
            backend._supervisor._unavailable = True
            assert backend._process_unavailable
            revived = pickle.loads(pickle.dumps(backend))
        finally:
            backend.close()
        # The checkpoint must not pin a healthy restore host to the
        # thread fallback: availability is re-probed, lanes start dense.
        assert revived._process_unavailable is False
        assert revived._lane_ids == {}
        try:
            assert revived.run_tasks(square, [((4,), {})]) == [16]
            assert revived._lane_ids  # fresh lanes on the restore host
        finally:
            revived.close()


class TestBaseClass:
    def test_execute_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ExecBackend().run_tasks(square, [((1,), {})])
