"""Runtime integration: absorb/publish/retire and digest parity.

The shared-scan registry may only ever change *how much* map work runs,
never an answer: two IR-equal tenants driven with sharing on must
produce exactly the outputs of the same drive with sharing off, while
the absorb path actually fires and the watermark keeps the registry
bounded.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.runtime import RedoopRuntime
from repro.hadoop.cluster import Cluster
from repro.hadoop.config import small_test_config
from repro.plan import SharedScanRegistry
from repro.workloads.batches import constant_rate, generate_batches
from repro.workloads.queries import aggregation_query
from repro.workloads.wcc import WCCConfig, generate_wcc_records

SOURCE = "wcc"
RATE = 100_000.0
HORIZON = 60.0
CONFIG = WCCConfig(record_size=4000, num_clients=100, num_objects=30)


def _queries():
    # Different windows, identical Scan → Map → Shuffle prefix: the
    # GCD packer gives both the same 10 s panes.
    return (
        aggregation_query(20, 10, name="q1", source=SOURCE, num_reducers=4),
        aggregation_query(30, 10, name="q2", source=SOURCE, num_reducers=4),
    )


def _drive(share: bool) -> Tuple[RedoopRuntime, Dict[str, List[tuple]], int]:
    cluster = Cluster(small_test_config(4), seed=0)
    runtime = RedoopRuntime(
        cluster, scan_sharing=SharedScanRegistry() if share else None
    )
    queries = _queries()
    for query in queries:
        runtime.register_query(query, {SOURCE: RATE})
    batches = list(
        generate_batches(
            SOURCE,
            HORIZON,
            5.0,
            constant_rate(RATE),
            lambda t0, t1, rate, seed: generate_wcc_records(
                t0, t1, rate, config=CONFIG, seed=seed
            ),
            seed=0,
        )
    )
    schedule = []
    for query in queries:
        recurrence = 1
        while query.execution_time(recurrence) <= HORIZON + 1e-9:
            schedule.append(
                (query.execution_time(recurrence), query.name, recurrence)
            )
            recurrence += 1
    schedule.sort()
    outputs: Dict[str, List[tuple]] = {}
    map_tasks = 0
    cursor = 0
    for due, name, recurrence in schedule:
        while cursor < len(batches) and batches[cursor][0].t_end <= due + 1e-9:
            runtime.ingest(*batches[cursor])
            cursor += 1
        result = runtime.run_recurrence(name, recurrence)
        map_tasks += int(result.counters.get("map.tasks"))
        outputs.setdefault(name, []).append(
            tuple(sorted(map(repr, result.output)))
        )
    return runtime, outputs, map_tasks


def test_sharing_preserves_every_output():
    baseline_rt, baseline, _ = _drive(share=False)
    shared_rt, shared, _ = _drive(share=True)
    assert baseline == shared
    counters = shared_rt.counters.as_dict()
    assert counters["plan.shared_scans"] > 0
    assert counters["plan.shared_map_bytes_saved"] > 0
    assert counters["plan.map_outputs_published"] > 0
    # With sharing off, the plan.* family never fires.
    assert not any(
        name.startswith("plan.") for name in baseline_rt.counters.as_dict()
    )


def test_sharing_skips_map_work():
    _, _, baseline_maps = _drive(share=False)
    shared_rt, _, shared_maps = _drive(share=True)
    # Fewer map tasks ran; absorbed panes still count as processed.
    assert shared_maps < baseline_maps
    assert shared_rt.counters.as_dict()["plan.shared_scans"] >= 1


def test_prefix_peers_are_visible():
    runtime, _, _ = _drive(share=True)
    assert runtime.shared_prefix_peers("q1") == {SOURCE: ["q2"]}
    assert runtime.shared_prefix_peers("q2") == {SOURCE: ["q1"]}


def test_watermark_bounds_the_registry():
    runtime, _, _ = _drive(share=True)
    registry = runtime.scan_sharing
    counters = runtime.counters.as_dict()
    assert counters.get("plan.map_outputs_retired", 0) > 0
    # Everything below the per-source floor is gone: at most the panes
    # the widest still-registered window can revisit remain.
    published = counters["plan.map_outputs_published"]
    assert len(registry) < published


def test_deregistering_the_last_reader_drops_the_source():
    runtime, _, _ = _drive(share=True)
    runtime.deregister_query("q1")
    runtime.deregister_query("q2")
    assert len(runtime.scan_sharing) == 0
    assert runtime.scan_sharing.sources() == ()


def test_unshareable_query_registers_without_sharing():
    from repro.core.panes import WindowSpec
    from repro.core.query import RecurringQuery
    from repro.hadoop.job import MapReduceJob

    cluster = Cluster(small_test_config(4), seed=0)
    runtime = RedoopRuntime(cluster, scan_sharing=SharedScanRegistry())
    job = MapReduceJob(
        name="lam",
        mapper=lambda record: [(record.payload["object"], 1)],
        reducer=lambda key, values: [(key, sum(values))],
        num_reducers=2,
    )
    query = RecurringQuery(
        name="lam",
        job=job,
        windows={SOURCE: WindowSpec(win=20, slide=10)},
    )
    runtime.register_query(query, {SOURCE: RATE})
    assert runtime.counters.as_dict()["plan.unshareable"] == 1
    assert runtime.shared_prefix_peers("lam") == {}
