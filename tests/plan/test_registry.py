"""SharedScanRegistry semantics and the static sharing analysis."""

from __future__ import annotations

import pickle

from repro.plan import (
    SharedScanRegistry,
    format_sharing_report,
    sharing_report,
)
from repro.workloads.queries import aggregation_query, join_query

FP = "f" * 64


def _publish(registry, index, *, fp=FP, source="wcc"):
    return registry.publish(
        fp,
        source,
        index,
        {0: [("k", 1)], 1: [("q", 2)]},
        input_records=10,
        input_bytes=1000,
        output_bytes=200,
        producer="t00",
    )


class TestRegistry:
    def test_publish_then_lookup(self):
        registry = SharedScanRegistry()
        assert registry.lookup(FP, "wcc", 3) is None
        entry = _publish(registry, 3)
        assert registry.lookup(FP, "wcc", 3) is entry
        assert len(registry) == 1
        assert registry.sources() == ("wcc",)

    def test_first_producer_wins(self):
        registry = SharedScanRegistry()
        first = _publish(registry, 3)
        second = registry.publish(
            FP, "wcc", 3, {0: [("other", 9)]},
            input_records=1, input_bytes=1, output_bytes=1, producer="t01",
        )
        assert second is first
        assert first.producer == "t00"
        assert len(registry) == 1

    def test_published_lists_are_copies(self):
        registry = SharedScanRegistry()
        working = {0: [("k", 1)]}
        entry = registry.publish(
            FP, "wcc", 0, working,
            input_records=1, input_bytes=1, output_bytes=1, producer="t00",
        )
        working[0].append(("corrupt", 0))  # producer mutates its buffers
        assert entry.partitioned[0] == [("k", 1)]

    def test_absorbed_copies_are_consumer_owned(self):
        registry = SharedScanRegistry()
        entry = _publish(registry, 0)
        absorbed = entry.copy_partitioned()
        absorbed[0].append(("consumer-local", 1))
        assert entry.partitioned[0] == [("k", 1)]
        # A second consumer sees the pristine entry.
        assert entry.copy_partitioned()[0] == [("k", 1)]

    def test_retire_below_watermark(self):
        registry = SharedScanRegistry()
        for idx in range(5):
            _publish(registry, idx)
        _publish(registry, 1, source="other")
        assert registry.retire("wcc", 3) == 3
        assert registry.lookup(FP, "wcc", 2) is None
        assert registry.lookup(FP, "wcc", 3) is not None
        # Other sources are untouched by a per-source watermark.
        assert registry.lookup(FP, "other", 1) is not None

    def test_drop_source(self):
        registry = SharedScanRegistry()
        _publish(registry, 0)
        _publish(registry, 7, source="other")
        assert registry.drop_source("wcc") == 1
        assert registry.sources() == ("other",)

    def test_registry_is_picklable(self):
        # Service checkpoints pickle the runtime, registry included.
        registry = SharedScanRegistry()
        _publish(registry, 2)
        revived = pickle.loads(pickle.dumps(registry))
        assert revived.lookup(FP, "wcc", 2).partitioned == {
            0: [("k", 1)], 1: [("q", 2)],
        }


class TestSharingReport:
    def test_ir_equal_prefixes_group(self):
        plans = {
            "a": aggregation_query(60, 30, name="a", num_reducers=4).plan(),
            "b": aggregation_query(120, 60, name="b", num_reducers=4).plan(),
            "c": aggregation_query(
                60, 30, name="c", key_field="client", num_reducers=4
            ).plan(),
        }
        report = sharing_report(plans)
        shared = report.shared_groups
        assert len(shared) == 1
        assert shared[0].source == "wcc"
        assert shared[0].queries == ("a", "b")
        alone = [g for g in report.groups if not g.shared]
        assert [g.queries for g in alone] == [("c",)]
        assert report.unshareable == []

    def test_multi_source_plans_group_per_source(self):
        plans = {
            "j1": join_query(60, 30, name="j1", num_reducers=4).plan(),
            "j2": join_query(90, 45, name="j2", num_reducers=4).plan(),
        }
        report = sharing_report(plans)
        assert {g.source for g in report.shared_groups} == {
            "events", "positions",
        }

    def test_unfingerprintable_plans_are_reported(self):
        import dataclasses

        query = aggregation_query(60, 30, name="lam", num_reducers=4)
        plan = query.plan()
        pipeline = plan.pipelines[0]
        broken = dataclasses.replace(
            plan,
            pipelines=(
                dataclasses.replace(
                    pipeline,
                    map=dataclasses.replace(
                        pipeline.map, mapper=lambda r: []
                    ),
                ),
            ),
        )
        report = sharing_report({"lam": broken})
        assert report.unshareable == ["lam"]
        assert report.shared_groups == []
        text = format_sharing_report(report)
        assert "never shared" in text

    def test_format_mentions_every_group(self):
        plans = {
            "a": aggregation_query(60, 30, name="a", num_reducers=4).plan(),
            "b": aggregation_query(60, 30, name="b", num_reducers=4).plan(),
        }
        text = format_sharing_report(sharing_report(plans))
        assert "[shared]" in text and "a, b" in text
        assert format_sharing_report(sharing_report({})) == "(no plans)"
