"""The logical-plan IR: construction, semantic equality, payload layout.

The IR is the single source of structural truth for fingerprinting,
planning, and sharing, so these tests pin the properties every consumer
leans on: deterministic construction (sorted pipelines), payload
layouts that exclude names/windows, prefix payloads that exclude the
reduce side, and an address-free rendering.
"""

from __future__ import annotations

import pytest

from repro.core.panes import WindowSpec
from repro.core.semantic_analyzer import SemanticAnalyzer, SourceStats
from repro.plan import (
    FingerprintError,
    LogicalPlan,
    pane_fingerprint_ir,
    pane_payload,
    plan_fingerprint_ir,
    prefix_fingerprint_ir,
    prefix_payload,
    render_plan,
)
from repro.workloads.queries import aggregation_query, join_query


def test_from_query_orders_pipelines_by_source():
    plan = join_query(60, 30, num_reducers=4).plan()
    assert plan.sources == ("events", "positions")
    assert [p.source for p in plan.pipelines] == sorted(
        p.source for p in plan.pipelines
    )


def test_plan_accessors():
    plan = aggregation_query(60, 30, num_reducers=4).plan()
    assert plan.sources == ("wcc",)
    assert plan.pipeline("wcc").source == "wcc"
    assert plan.window("wcc") == WindowSpec(win=60, slide=30)
    with pytest.raises(KeyError):
        plan.pipeline("nope")


def test_empty_plan_is_rejected():
    query = aggregation_query(60, 30)
    with pytest.raises(ValueError):
        LogicalPlan(pipelines=(), finalize=query.plan().finalize)


def test_semantic_equality_across_constructions():
    # Two independently constructed queries hold distinct callable
    # *instances*; the payloads (and therefore digests) must still agree.
    a = aggregation_query(60, 30, name="a", num_reducers=4).plan()
    b = aggregation_query(900, 300, name="b", num_reducers=4).plan()
    pa, pb = a.pipeline("wcc"), b.pipeline("wcc")
    assert pane_payload(pa) == pane_payload(pb)
    assert prefix_payload(pa) == prefix_payload(pb)
    assert pane_fingerprint_ir(pa) == pane_fingerprint_ir(pb)
    assert plan_fingerprint_ir(a) == plan_fingerprint_ir(b)


def test_pane_payload_layout_is_pinned():
    # The key set IS the compatibility contract with stored artifacts
    # (tests/reuse/test_golden_fingerprints.py pins the digests).
    payload = pane_payload(aggregation_query(60, 30).plan().pipeline("wcc"))
    assert list(payload) == [
        "schema",
        "scope",
        "source",
        "mapper",
        "combiner",
        "reducer",
        "partitioner",
        "num_reducers",
        "intermediate_pair_size",
        "output_pair_size",
    ]
    assert payload["scope"] == "pane"


def test_prefix_payload_excludes_the_reduce_side():
    payload = prefix_payload(aggregation_query(60, 30).plan().pipeline("wcc"))
    assert payload["scope"] == "map-prefix"
    assert "reducer" not in payload
    assert "output_pair_size" not in payload


def test_prefix_matches_across_different_reducers():
    # Same map side, different reduce side: the shareable prefix agrees
    # while the pane-level digest (which covers the reducer) differs.
    agg = aggregation_query(60, 30, name="a", num_reducers=4).plan()
    other = aggregation_query(60, 30, name="b", num_reducers=4).plan()
    assert prefix_fingerprint_ir(agg.pipeline("wcc")) == prefix_fingerprint_ir(
        other.pipeline("wcc")
    )
    keyed = aggregation_query(
        60, 30, name="c", key_field="client", num_reducers=4
    ).plan()
    assert prefix_fingerprint_ir(agg.pipeline("wcc")) != prefix_fingerprint_ir(
        keyed.pipeline("wcc")
    )


def test_num_reducers_changes_the_prefix():
    # Partitioned map output depends on the shuffle fan-out, so it is
    # part of the prefix — two queries with different reducer counts
    # must never share map output.
    four = aggregation_query(60, 30, num_reducers=4).plan()
    two = aggregation_query(60, 30, num_reducers=2).plan()
    assert prefix_fingerprint_ir(four.pipeline("wcc")) != prefix_fingerprint_ir(
        two.pipeline("wcc")
    )


def test_with_window_replaces_only_the_scan_window():
    pipeline = aggregation_query(60, 30).plan().pipeline("wcc")
    gcd = pipeline.with_window(WindowSpec(win=60, slide=10))
    assert gcd.scan.window == WindowSpec(win=60, slide=10)
    assert gcd.map is pipeline.map
    assert gcd.shuffle is pipeline.shuffle
    assert gcd.reduce is pipeline.reduce
    # The window never participates in any digest.
    assert pane_fingerprint_ir(gcd) == pane_fingerprint_ir(pipeline)
    assert prefix_fingerprint_ir(gcd) == prefix_fingerprint_ir(pipeline)


def test_unfingerprintable_callable_raises():
    import dataclasses

    pipeline = aggregation_query(60, 30).plan().pipelines[0]
    broken = dataclasses.replace(
        pipeline,
        map=dataclasses.replace(pipeline.map, mapper=lambda r: []),
    )
    with pytest.raises(FingerprintError):
        prefix_fingerprint_ir(broken)


def test_render_plan_is_address_free():
    text = render_plan(aggregation_query(60, 30, num_reducers=4).plan())
    assert "Scan[wcc]" in text
    assert "Finalize[" in text
    assert "0x" not in text  # no memory addresses → stable across runs
    again = render_plan(aggregation_query(60, 30, num_reducers=4).plan())
    assert text == again


def test_analyzer_plans_off_the_scan_node():
    from repro.hadoop.config import DEFAULT_CONFIG

    analyzer = SemanticAnalyzer(DEFAULT_CONFIG)
    pipeline = aggregation_query(600, 300).plan().pipeline("wcc")
    stats = SourceStats(source="wcc", rate=1_000_000.0)
    by_ir = analyzer.plan_pipeline(pipeline, stats)
    by_spec = analyzer.plan(WindowSpec(win=600, slide=300), stats)
    assert by_ir == by_spec
    with pytest.raises(ValueError):
        analyzer.plan_pipeline(pipeline, SourceStats(source="other", rate=1.0))
