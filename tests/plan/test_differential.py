"""The shared-scan differential oracle, end to end through the service.

These are the tests the CI fast lane's smoke step mirrors
(``repro plan --differential``): sharing on vs. off must be
byte-identical per tenant per window, under churn, under a
deterministic node kill/recover plan, and under a real process-pool
backend — while the shared run demonstrably skips map work.
"""

from __future__ import annotations

import pytest

from repro.bench.service import ServiceScenario, build_server
from repro.bench.sharing import (
    FaultAction,
    default_fault_plan,
    run_sharing_differential,
)

SCENARIO = ServiceScenario(tenants=3, recurrences=6)


def test_differential_is_byte_identical_and_shares():
    report = run_sharing_differential(SCENARIO)
    assert report.mismatches == []
    assert report.shared_scans > 0
    assert report.shared_map_bytes_saved > 0
    assert report.ok
    assert "byte-identical" in report.summary()


def test_differential_survives_a_node_kill():
    plan = default_fault_plan(SCENARIO)
    assert [a.kind for a in plan] == ["node-kill", "node-recover"]
    report = run_sharing_differential(SCENARIO, fault_plan=plan)
    assert report.faults_applied == 2
    assert report.ok, report.summary()


def test_differential_reports_a_manufactured_mismatch():
    # The oracle itself must be falsifiable: feed it runs that cannot
    # share (single tenant fleet) and require a non-ok report.
    lone = ServiceScenario(tenants=1, recurrences=3, churn=False)
    report = run_sharing_differential(lone)
    assert report.mismatches == []  # outputs still agree...
    assert report.shared_scans == 0  # ...but nothing was shared
    assert not report.ok
    assert "never shared" in report.summary()


def test_submit_counts_prefix_matches():
    server = build_server(SCENARIO, share_scans=True)
    counters = server.counters.as_dict()
    # t01 and t02 each matched an already-registered IR-equal prefix.
    assert counters["plan.prefix_matches"] == 2.0
    assert server.runtime.shared_prefix_peers("t00") == {
        "wcc": ["t01", "t02"]
    }


def test_submit_without_sharing_emits_no_plan_counters():
    server = build_server(SCENARIO, share_scans=False)
    assert not any(
        name.startswith("plan.") for name in server.counters.as_dict()
    )


@pytest.mark.slow
def test_differential_with_process_backend():
    from repro.exec import ProcessPoolBackend

    scenario = ServiceScenario(tenants=2, recurrences=5, churn=False)
    report = run_sharing_differential(
        scenario,
        backend_factory=lambda: ProcessPoolBackend(workers=2),
    )
    assert report.ok, report.summary()


@pytest.mark.slow
def test_fault_plan_actions_are_idempotent_against_dead_nodes():
    # Killing an already-dead node (or recovering a live one) is a
    # no-op, so a fault plan denser than the node's state transitions
    # still drives to an ok report.
    plan = list(default_fault_plan(SCENARIO))
    victim = plan[0].node_id
    plan.insert(
        1, FaultAction(time=plan[0].time, kind="node-kill", node_id=victim)
    )
    report = run_sharing_differential(SCENARIO, fault_plan=plan)
    assert report.ok, report.summary()
