"""Tests for the extended query library (distinct count, extrema)."""

from __future__ import annotations

from collections import defaultdict


from repro.core import RedoopRuntime
from repro.hadoop import BatchFile, Cluster, small_test_config
from repro.hadoop.shuffle import run_reduce_partition
from repro.workloads.queries import distinct_count_query, extrema_query
from repro.workloads.wcc import WCCConfig, generate_wcc_records
from repro.workloads.ffg import FFGConfig, generate_position_records


class TestDistinctCountQuery:
    def test_reducer_flattens_combined_sets(self):
        q = distinct_count_query(40.0, 10.0)
        out = list(q.job.reducer("k", [1, 2, frozenset({2, 3}), 4]))
        assert out == [("k", frozenset({1, 2, 3, 4}))]

    def test_combiner_idempotent(self):
        q = distinct_count_query(40.0, 10.0)
        pairs = [("k", v) for v in (1, 1, 2, 3, 3)]
        once = run_reduce_partition(pairs, q.job.reducer)
        twice = run_reduce_partition(once, q.job.reducer)
        assert once == twice

    def test_finalize_merges_pane_sets(self):
        q = distinct_count_query(40.0, 10.0)
        merged = list(q.finalize("k", [frozenset({1, 2}), frozenset({2, 3})]))
        assert merged == [("k", frozenset({1, 2, 3}))]

    def test_end_to_end_matches_ground_truth(self):
        cluster = Cluster(small_test_config(), seed=5)
        runtime = RedoopRuntime(cluster)
        q = distinct_count_query(40.0, 10.0, num_reducers=4)
        runtime.register_query(q, {"wcc": 500_000.0})
        cfg = WCCConfig(record_size=100, num_objects=6, num_clients=9)
        truth = defaultdict(set)
        for i in range(5):
            t0, t1 = i * 10.0, (i + 1) * 10.0
            records = generate_wcc_records(t0, t1, 2_000.0, config=cfg, seed=i)
            runtime.ingest(
                BatchFile(path=f"/b/{i}", source="wcc", t_start=t0, t_end=t1),
                records,
            )
            for r in records:
                truth[(r.value["object"], r.ts)] = r.value["client"]
        runtime.run_recurrence(q.name, 1)
        result = runtime.run_recurrence(q.name, 2)  # window [10, 50)
        expected = defaultdict(set)
        for (obj, ts), client in truth.items():
            if 10.0 <= ts < 50.0:
                expected[obj].add(client)
        got = {k: set(v) for k, v in result.output}
        assert got == dict(expected)


class TestExtremaQuery:
    def test_reducer_computes_envelope(self):
        q = extrema_query(40.0, 10.0)
        out = list(q.job.reducer("p", [3.0, 9.5, 0.2]))
        assert out == [("p", (0.2, 9.5))]

    def test_finalize_merges_envelopes(self):
        q = extrema_query(40.0, 10.0)
        merged = list(q.finalize("p", [(1.0, 4.0), (0.5, 3.0)]))
        assert merged == [("p", (0.5, 4.0))]

    def test_no_combiner(self):
        # The reducer's output type differs from its input type, so a
        # combiner would corrupt the fold.
        assert extrema_query(40.0, 10.0).job.combiner is None

    def test_end_to_end_matches_ground_truth(self):
        cluster = Cluster(small_test_config(), seed=5)
        runtime = RedoopRuntime(cluster)
        q = extrema_query(40.0, 10.0, num_reducers=4)
        runtime.register_query(q, {"positions": 500_000.0})
        cfg = FFGConfig(record_size=100, num_players=5)
        all_records = []
        for i in range(4):
            t0, t1 = i * 10.0, (i + 1) * 10.0
            records = generate_position_records(
                t0, t1, 2_000.0, config=cfg, seed=i
            )
            runtime.ingest(
                BatchFile(
                    path=f"/b/{i}", source="positions", t_start=t0, t_end=t1
                ),
                records,
            )
            all_records.extend(records)
        result = runtime.run_recurrence(q.name, 1)  # window [0, 40)
        expected = {}
        for r in all_records:
            p, s = r.value["player"], r.value["speed"]
            lo, hi = expected.get(p, (float("inf"), float("-inf")))
            expected[p] = (min(lo, s), max(hi, s))
        assert dict(result.output) == expected
