"""Unit tests for the paper's aggregation and join query builders."""

from __future__ import annotations


from repro.hadoop.shuffle import run_reduce_partition
from repro.hadoop.types import Record
from repro.workloads.queries import (
    JOIN_SOURCES,
    aggregation_query,
    join_query,
)


def click(ts, obj, nbytes=100):
    return Record(
        ts=ts,
        value={"src": "wcc", "object": obj, "bytes": nbytes, "client": 1,
               "method": "GET", "status": 200, "region": "europe"},
        size=100,
    )


class TestAggregationQuery:
    def test_structure(self):
        q = aggregation_query(100.0, 20.0, num_reducers=8)
        assert q.sources == ("wcc",)
        assert q.slide == 20.0
        assert q.job.num_reducers == 8

    def test_mapper_emits_key_and_measures(self):
        q = aggregation_query(100.0, 20.0)
        pairs = list(q.job.mapper(click(1.0, obj=5, nbytes=300)))
        assert pairs == [(5, (1, 300))]

    def test_reducer_aggregates(self):
        q = aggregation_query(100.0, 20.0)
        out = list(q.job.reducer(5, [(1, 100), (1, 200), (1, 50)]))
        assert out == [(5, (3, 350))]

    def test_finalize_merges_partials(self):
        q = aggregation_query(100.0, 20.0)
        merged = list(q.finalize(5, [(3, 350), (2, 100)]))
        assert merged == [(5, (5, 450))]

    def test_algebraic_property(self):
        """Window reduce == finalize over per-pane reduces."""
        q = aggregation_query(100.0, 20.0)
        pane1 = [(1, 100), (1, 200)]
        pane2 = [(1, 50)]
        direct = list(q.job.reducer("k", pane1 + pane2))
        partials = []
        for pane in (pane1, pane2):
            partials.extend(v for _k, v in q.job.reducer("k", pane))
        via_panes = list(q.finalize("k", partials))
        assert direct == via_panes

    def test_custom_key_field(self):
        q = aggregation_query(100.0, 20.0, key_field="region")
        pairs = list(q.job.mapper(click(1.0, obj=5)))
        assert pairs[0][0] == "europe"


def sensor(ts, player, src):
    if src == "positions":
        value = {"src": src, "player": player, "x": 1.0, "y": 2.0, "speed": 3.0}
    else:
        value = {"src": src, "player": player, "event": "pass", "intensity": 0.5}
    return Record(ts=ts, value=value, size=80)


class TestJoinQuery:
    def test_structure(self):
        q = join_query(100.0, 20.0, num_reducers=8)
        assert q.sources == tuple(sorted(JOIN_SOURCES))
        assert q.num_sources == 2
        assert q.job.combiner is None  # joins cannot pre-combine

    def test_mapper_tags_by_source(self):
        q = join_query(100.0, 20.0)
        (key, (tag, _value)), = list(q.job.mapper(sensor(1.0, 7, "events")))
        assert key == 7
        assert tag == "events"

    def test_reducer_cross_products(self):
        q = join_query(100.0, 20.0)
        values = [
            q.job.mapper(sensor(1.0, 7, "events")).__next__()[1],
            q.job.mapper(sensor(2.0, 7, "events")).__next__()[1],
            q.job.mapper(sensor(3.0, 7, "positions")).__next__()[1],
        ]
        out = list(q.job.reducer(7, values))
        assert len(out) == 2  # 2 events x 1 position

    def test_reducer_one_sided_group_empty(self):
        q = join_query(100.0, 20.0)
        values = [q.job.mapper(sensor(1.0, 7, "events")).__next__()[1]]
        assert list(q.job.reducer(7, values)) == []

    def test_pane_decomposition_equals_window_join(self):
        """Union of per-pane-pair joins == whole-window join."""
        q = join_query(100.0, 20.0)
        evt = [sensor(t, t % 2, "events") for t in range(4)]
        pos = [sensor(t + 0.5, t % 2, "positions") for t in range(4)]
        # Whole-window join.
        pairs = []
        for r in evt + pos:
            pairs.extend(q.job.mapper(r))
        whole = run_reduce_partition(pairs, q.job.reducer)
        # Pane-pair decomposition: panes of 2 records each.
        panes_e = [evt[:2], evt[2:]]
        panes_p = [pos[:2], pos[2:]]
        decomposed = []
        for pe in panes_e:
            for pp in panes_p:
                pane_pairs = []
                for r in pe + pp:
                    pane_pairs.extend(q.job.mapper(r))
                decomposed.extend(run_reduce_partition(pane_pairs, q.job.reducer))
        assert sorted(map(repr, whole)) == sorted(map(repr, decomposed))
