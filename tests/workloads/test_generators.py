"""Unit tests for the synthetic WCC and FFG generators."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.ffg import (
    FFGConfig,
    generate_event_records,
    generate_position_records,
)
from repro.workloads.wcc import WCCConfig, generate_wcc_records


class TestWCC:
    def test_volume_matches_rate(self):
        records = generate_wcc_records(0.0, 100.0, rate=1000.0)
        total = sum(r.size for r in records)
        assert total == pytest.approx(100_000, rel=0.05)

    def test_timestamps_within_interval(self):
        records = generate_wcc_records(50.0, 60.0, rate=5000.0)
        assert all(50.0 <= r.ts < 60.0 for r in records)

    def test_schema_fields(self):
        record = generate_wcc_records(0.0, 1.0, rate=1000.0)[0]
        assert set(record.value) == {
            "src", "client", "object", "bytes", "method", "status", "region",
        }
        assert record.value["src"] == "wcc"

    def test_deterministic_per_seed(self):
        a = generate_wcc_records(0.0, 10.0, 1000.0, seed=4)
        b = generate_wcc_records(0.0, 10.0, 1000.0, seed=4)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_wcc_records(0.0, 10.0, 5000.0, seed=1)
        b = generate_wcc_records(0.0, 10.0, 5000.0, seed=2)
        assert a != b

    def test_key_space_respected(self):
        cfg = WCCConfig(num_objects=7)
        records = generate_wcc_records(0.0, 10.0, 10_000.0, config=cfg)
        assert all(0 <= r.value["object"] < 7 for r in records)

    def test_zipf_skew(self):
        cfg = WCCConfig(num_objects=100, zipf_s=1.5, record_size=10)
        records = generate_wcc_records(0.0, 100.0, 10_000.0, config=cfg, seed=3)
        counts = Counter(r.value["object"] for r in records)
        top = sum(v for k, v in counts.items() if k < 10)
        assert top > len(records) * 0.5  # head objects dominate

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            generate_wcc_records(10.0, 10.0, 1000.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            generate_wcc_records(0.0, 10.0, 0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WCCConfig(record_size=0)
        with pytest.raises(ValueError):
            WCCConfig(num_objects=0)
        with pytest.raises(ValueError):
            WCCConfig(zipf_s=0.0)

    @pytest.mark.slow
    @given(
        t0=st.floats(0, 1e4),
        dur=st.floats(1.0, 1e3),
        rate=st.floats(100.0, 1e6),
    )
    @settings(max_examples=25, deadline=None)
    def test_records_sorted_enough_property(self, t0, dur, rate):
        """Timestamps are within the interval and roughly even."""
        records = generate_wcc_records(t0, t0 + dur, rate, seed=0)
        assert all(t0 <= r.ts < t0 + dur for r in records)


class TestFFG:
    def test_position_schema(self):
        record = generate_position_records(0.0, 1.0, 1000.0)[0]
        assert set(record.value) == {"src", "player", "x", "y", "speed"}
        assert record.value["src"] == "positions"

    def test_event_schema(self):
        record = generate_event_records(0.0, 1.0, 1000.0)[0]
        assert set(record.value) == {"src", "player", "event", "intensity"}
        assert record.value["src"] == "events"

    def test_positions_within_field(self):
        cfg = FFGConfig()
        records = generate_position_records(0.0, 10.0, 10_000.0, config=cfg)
        for r in records:
            assert 0 <= r.value["x"] <= cfg.field_length
            assert 0 <= r.value["y"] <= cfg.field_width

    def test_player_key_space(self):
        cfg = FFGConfig(num_players=5)
        for gen in (generate_position_records, generate_event_records):
            records = gen(0.0, 10.0, 10_000.0, config=cfg)
            assert all(0 <= r.value["player"] < 5 for r in records)

    def test_streams_joinable_on_player(self):
        cfg = FFGConfig(num_players=3)
        pos = generate_position_records(0.0, 10.0, 10_000.0, config=cfg, seed=1)
        evt = generate_event_records(0.0, 10.0, 10_000.0, config=cfg, seed=1)
        pos_players = {r.value["player"] for r in pos}
        evt_players = {r.value["player"] for r in evt}
        assert pos_players & evt_players  # join produces output

    def test_deterministic_and_stream_specific(self):
        a = generate_position_records(0.0, 5.0, 1000.0, seed=9)
        b = generate_position_records(0.0, 5.0, 1000.0, seed=9)
        c = generate_event_records(0.0, 5.0, 1000.0, seed=9)
        assert a == b
        assert [r.ts for r in a] != [r.ts for r in c] or a != c

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_position_records(0.0, 0.0, 1000.0)
        with pytest.raises(ValueError):
            generate_event_records(0.0, 1.0, -5.0)
        with pytest.raises(ValueError):
            FFGConfig(record_size=0)
        with pytest.raises(ValueError):
            FFGConfig(num_players=0)
