"""Unit tests for batch arrival generation and rate schedules."""

from __future__ import annotations

import pytest

from repro.core.panes import WindowSpec
from repro.hadoop.catalog import BatchCatalog
from repro.hadoop.types import Record
from repro.workloads.batches import (
    constant_rate,
    generate_batches,
    paper_spike_windows,
    spiky_rate,
)


def _gen(t0, t1, rate, seed):
    n = max(1, round(rate * (t1 - t0) / 100))
    dt = (t1 - t0) / n
    return [Record(ts=t0 + i * dt, value=seed, size=100) for i in range(n)]


class TestConstantRate:
    def test_value(self):
        assert constant_rate(5.0)(0, 10) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_rate(0.0)


class TestSpikyRate:
    def test_paper_pattern(self):
        spiked = paper_spike_windows(10)
        assert spiked == {2, 3, 5, 6, 8, 9}

    def test_spiked_intervals_doubled(self):
        spec = WindowSpec(win=100.0, slide=20.0)
        schedule = spiky_rate(10.0, spec, spiked_recurrences={2, 3})
        # Window 1's data: [0, 100). Window 2's new data: [100, 120).
        assert schedule(0.0, 20.0) == 10.0
        assert schedule(100.0, 120.0) == 20.0
        assert schedule(120.0, 140.0) == 20.0  # window 3
        assert schedule(140.0, 160.0) == 10.0  # window 4

    def test_first_window_spike(self):
        spec = WindowSpec(win=100.0, slide=20.0)
        schedule = spiky_rate(10.0, spec, spiked_recurrences={1})
        assert schedule(0.0, 20.0) == 20.0
        assert schedule(80.0, 100.0) == 20.0
        assert schedule(100.0, 120.0) == 10.0

    def test_custom_factor(self):
        spec = WindowSpec(win=100.0, slide=20.0)
        schedule = spiky_rate(10.0, spec, spiked_recurrences={2}, factor=3.0)
        assert schedule(100.0, 120.0) == 30.0

    def test_factor_validation(self):
        spec = WindowSpec(win=100.0, slide=20.0)
        with pytest.raises(ValueError):
            spiky_rate(10.0, spec, spiked_recurrences=set(), factor=0.0)


class TestGenerateBatches:
    def test_covers_horizon_contiguously(self):
        batches = list(
            generate_batches("S1", 95.0, 10.0, constant_rate(1000.0), _gen)
        )
        assert batches[0][0].t_start == 0.0
        assert batches[-1][0].t_end == 95.0  # short final batch
        for (a, _), (b, _) in zip(batches, batches[1:]):
            assert a.t_end == b.t_start

    def test_batches_feed_catalog(self):
        catalog = BatchCatalog()
        for batch, _records in generate_batches(
            "S1", 50.0, 10.0, constant_rate(1000.0), _gen
        ):
            catalog.add(batch)  # must satisfy ordering constraints
        assert len(catalog.batches("S1")) == 5

    def test_records_within_batch_ranges(self):
        for batch, records in generate_batches(
            "S1", 30.0, 10.0, constant_rate(1000.0), _gen
        ):
            assert all(batch.t_start <= r.ts < batch.t_end for r in records)

    def test_rate_schedule_applied_per_batch(self):
        spec = WindowSpec(win=20.0, slide=10.0)
        schedule = spiky_rate(1000.0, spec, spiked_recurrences={2})
        batches = list(generate_batches("S1", 40.0, 10.0, schedule, _gen))
        sizes = [sum(r.size for r in records) for _b, records in batches]
        # Window 2's new data is [20, 30): the third batch is doubled.
        assert sizes[2] == pytest.approx(2 * sizes[0], rel=0.1)

    def test_paths_unique_and_prefixed(self):
        paths = [
            b.path
            for b, _ in generate_batches(
                "S1", 30.0, 10.0, constant_rate(1000.0), _gen, path_prefix="/x"
            )
        ]
        assert len(set(paths)) == 3
        assert all(p.startswith("/x/S1/") for p in paths)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(generate_batches("S1", 0.0, 10.0, constant_rate(1.0), _gen))
        with pytest.raises(ValueError):
            list(generate_batches("S1", 10.0, 0.0, constant_rate(1.0), _gen))
