"""Unit tests for logical map/reduce task execution."""

from __future__ import annotations


from repro.hadoop.task import execute_map, execute_reduce
from repro.hadoop.types import Record

from ..conftest import make_records, wordcount_job


class TestExecuteMap:
    def test_output_partitioned_correctly(self):
        job = wordcount_job(num_reducers=4)
        ex = execute_map(job, make_records(50, key_space=8))
        for partition, pairs in ex.partitioned.items():
            for key, _ in pairs:
                assert job.partition_of(key) == partition

    def test_combiner_compacts_output(self):
        job = wordcount_job()
        records = [Record(ts=i, value="same") for i in range(100)]
        ex = execute_map(job, records)
        assert ex.output_pairs == 1  # combiner collapsed 100 pairs
        total = sum(v for pairs in ex.partitioned.values() for _, v in pairs)
        assert total == 100

    def test_no_combiner_keeps_all_pairs(self):
        job = wordcount_job()
        from dataclasses import replace

        job = replace(job, combiner=None)
        ex = execute_map(job, [Record(ts=i, value="w") for i in range(10)])
        assert ex.output_pairs == 10

    def test_byte_accounting(self):
        job = wordcount_job()
        records = make_records(10, size=50, key_space=1000, seed=9)
        ex = execute_map(job, records)
        assert ex.input_bytes == 500
        assert ex.output_bytes == ex.output_pairs * job.intermediate_pair_size

    def test_explicit_input_bytes_override(self):
        job = wordcount_job()
        ex = execute_map(job, make_records(10), input_bytes=12345)
        assert ex.input_bytes == 12345

    def test_empty_input(self):
        job = wordcount_job()
        ex = execute_map(job, [])
        assert ex.partitioned == {}
        assert ex.output_pairs == 0

    def test_bytes_for_partition(self):
        job = wordcount_job(num_reducers=2)
        ex = execute_map(job, make_records(20, key_space=6))
        for p in range(2):
            expected = len(ex.partitioned.get(p, [])) * job.intermediate_pair_size
            assert ex.bytes_for_partition(p, job) == expected


class TestExecuteReduce:
    def test_wordcount_totals(self):
        job = wordcount_job()
        pairs = [("a", 2), ("a", 3), ("b", 1)]
        rex = execute_reduce(job, 0, pairs)
        assert dict(rex.output) == {"a": 5, "b": 1}

    def test_byte_accounting(self):
        job = wordcount_job()
        rex = execute_reduce(job, 0, [("a", 1), ("b", 1)])
        assert rex.input_pairs == 2
        assert rex.input_bytes == 2 * job.intermediate_pair_size
        assert rex.output_bytes == len(rex.output) * job.output_pair_size

    def test_empty_partition(self):
        job = wordcount_job()
        rex = execute_reduce(job, 3, [])
        assert rex.output == []
        assert rex.partition == 3
