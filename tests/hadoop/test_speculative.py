"""Tests for speculative execution (off by default, as in the paper)."""

from __future__ import annotations


from repro.hadoop import Cluster, JobTracker, small_test_config
from repro.hadoop.config import DEFAULT_CONFIG

from ..conftest import make_records, wordcount_job


def run_job(*, speculative: bool, node_speeds=None):
    config = small_test_config(num_nodes=4).with_overrides(
        speculative_execution=speculative
    )
    cluster = Cluster(config, seed=6, node_speeds=node_speeds)
    cluster.hdfs.create("/in", make_records(600, size=60_000, key_space=5))
    return JobTracker(cluster).run_job(wordcount_job(), ["/in"])


class TestDefaults:
    def test_off_by_default_like_the_paper(self):
        assert DEFAULT_CONFIG.speculative_execution is False

    def test_no_speculation_on_homogeneous_cluster(self):
        result = run_job(speculative=True)
        assert result.counters.get("map.speculative_tasks") == 0


class TestWithStragglers:
    SLOW = {0: 0.1}  # node 0 runs tasks at a tenth of the speed

    def test_speculation_launches_backups(self):
        result = run_job(speculative=True, node_speeds=self.SLOW)
        assert result.counters.get("map.speculative_tasks") >= 1

    def test_speculation_cuts_job_span(self):
        plain = run_job(speculative=False, node_speeds=self.SLOW)
        spec = run_job(speculative=True, node_speeds=self.SLOW)
        assert spec.span < plain.span

    def test_output_unchanged(self):
        plain = run_job(speculative=False, node_speeds=self.SLOW)
        spec = run_job(speculative=True, node_speeds=self.SLOW)
        assert sorted(map(repr, spec.merged_output())) == sorted(
            map(repr, plain.merged_output())
        )

    def test_slowness_threshold_validated_config(self):
        cfg = small_test_config().with_overrides(speculative_slowness=2.0)
        assert cfg.speculative_slowness == 2.0
