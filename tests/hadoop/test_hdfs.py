"""Unit tests for the simulated HDFS."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hadoop.config import ClusterConfig, small_test_config
from repro.hadoop.hdfs import HDFSError, SimulatedHDFS

from ..conftest import make_records


@pytest.fixture
def hdfs() -> SimulatedHDFS:
    return SimulatedHDFS(small_test_config(), seed=3)


class TestNamespace:
    def test_create_and_open(self, hdfs):
        recs = make_records(10)
        hdfs.create("/data/f1", recs)
        assert hdfs.open("/data/f1").num_records == 10

    def test_create_duplicate_rejected(self, hdfs):
        hdfs.create("/f", make_records(1))
        with pytest.raises(HDFSError):
            hdfs.create("/f", make_records(1))

    def test_open_missing_raises(self, hdfs):
        with pytest.raises(HDFSError):
            hdfs.open("/missing")

    def test_delete(self, hdfs):
        hdfs.create("/f", make_records(1))
        hdfs.delete("/f")
        assert not hdfs.exists("/f")

    def test_delete_missing_raises(self, hdfs):
        with pytest.raises(HDFSError):
            hdfs.delete("/missing")

    def test_glob(self, hdfs):
        for name in ("/logs/S1P1", "/logs/S1P2", "/logs/S2P1"):
            hdfs.create(name, make_records(1))
        assert hdfs.glob("/logs/S1P*") == ["/logs/S1P1", "/logs/S1P2"]

    def test_total_bytes(self, hdfs):
        hdfs.create("/f", make_records(10, size=50))
        assert hdfs.total_bytes == 500

    def test_read_records_charges_counter(self, hdfs):
        hdfs.create("/f", make_records(10, size=50))
        hdfs.read_records("/f")
        assert hdfs.counters.get("hdfs.bytes_read") == 500


class TestBlockPlacement:
    def test_small_file_is_one_block(self, hdfs):
        hfile = hdfs.create("/f", make_records(10, size=100))
        assert len(hfile.blocks) == 1

    def test_large_file_splits_into_blocks(self, hdfs):
        # 4 MB blocks in the test config; 10 MB of records -> 3 blocks.
        recs = make_records(100, size=100 * 1024)
        hfile = hdfs.create("/f", recs)
        assert len(hfile.blocks) == 3
        assert sum(b.size for b in hfile.blocks) == hfile.size

    def test_replication_factor_respected(self, hdfs):
        hfile = hdfs.create("/f", make_records(5))
        for block in hfile.blocks:
            assert len(block.replicas) == 3  # config replication
            assert len(set(block.replicas)) == 3  # distinct nodes

    def test_replication_capped_by_cluster_size(self):
        cfg = ClusterConfig(num_nodes=2, replication=3, default_num_reducers=2)
        fs = SimulatedHDFS(cfg, seed=0)
        hfile = fs.create("/f", make_records(3))
        assert len(hfile.blocks[0].replicas) == 2

    def test_placement_deterministic_for_seed(self):
        def placements(seed):
            fs = SimulatedHDFS(small_test_config(), seed=seed)
            f = fs.create("/f", make_records(5))
            return [b.replicas for b in f.blocks]

        assert placements(5) == placements(5)


class TestSplits:
    def test_single_block_single_split(self, hdfs):
        hdfs.create("/f", make_records(10))
        splits = hdfs.splits("/f")
        assert len(splits) == 1
        assert splits[0].num_records == 10

    def test_multi_block_splits_cover_all_records(self, hdfs):
        recs = make_records(100, size=100 * 1024)
        hdfs.create("/f", recs)
        splits = hdfs.splits("/f")
        assert len(splits) == 3
        assert sum(s.num_records for s in splits) == 100
        rebuilt = [r for s in splits for r in s.records]
        assert rebuilt == list(recs)

    def test_split_locations_match_block_replicas(self, hdfs):
        hfile = hdfs.create("/f", make_records(5))
        split = hdfs.splits("/f")[0]
        assert split.locations == hfile.blocks[0].replicas

    @given(n=st.integers(1, 60), size=st.integers(1, 300 * 1024))
    @settings(max_examples=25, deadline=None)
    def test_no_record_lost_property(self, n, size):
        fs = SimulatedHDFS(small_test_config(), seed=1)
        recs = make_records(n, size=size)
        fs.create("/f", recs)
        splits = fs.splits("/f")
        assert sum(s.num_records for s in splits) == n


class TestNodeFailure:
    def test_failed_node_rereplicates(self, hdfs):
        hfile = hdfs.create("/f", make_records(20, size=100 * 1024))
        victim = next(iter(hfile.replica_nodes()))
        moved = hdfs.fail_node(victim)
        assert moved >= 1
        for block in hdfs.open("/f").blocks:
            assert victim not in block.replicas
            assert len(block.replicas) >= 2

    def test_fail_dead_node_raises(self, hdfs):
        hdfs.fail_node(0)
        with pytest.raises(HDFSError):
            hdfs.fail_node(0)

    def test_recover_node(self, hdfs):
        hdfs.fail_node(1)
        hdfs.recover_node(1)
        assert 1 in hdfs.live_nodes

    def test_recover_alive_node_raises(self, hdfs):
        with pytest.raises(HDFSError):
            hdfs.recover_node(0)

    def test_recover_unknown_node_raises(self, hdfs):
        hdfs.fail_node(0)
        with pytest.raises(HDFSError):
            hdfs.recover_node(99)

    def test_new_files_avoid_dead_nodes(self, hdfs):
        hdfs.fail_node(2)
        hfile = hdfs.create("/f", make_records(50, size=100 * 1024))
        assert 2 not in hfile.replica_nodes()
