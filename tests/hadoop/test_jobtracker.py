"""Unit tests for the job tracker and FIFO scheduler."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.hadoop import Cluster, FaultInjector, JobTracker, small_test_config
from repro.hadoop.jobtracker import FIFOScheduler
from repro.hadoop.node import MAP_SLOT

from ..conftest import make_records, wordcount_job


def _load_wordcount_input(cluster, n=200, path="/in/batch1", **kw):
    records = make_records(n, key_space=5, **kw)
    cluster.hdfs.create(path, records)
    return records


class TestFIFOScheduler:
    def test_picks_earliest_free_slot(self, small_cluster):
        sched = FIFOScheduler()
        # Busy up node 0 entirely.
        for _ in range(small_cluster.config.map_slots_per_node):
            small_cluster.node(0).occupy_slot(MAP_SLOT, 0.0, 100.0)
        chosen = sched.choose_node(small_cluster, MAP_SLOT, 0.0)
        assert chosen.node_id != 0

    def test_prefers_local_on_tie(self, small_cluster):
        sched = FIFOScheduler()
        chosen = sched.choose_node(
            small_cluster, MAP_SLOT, 0.0, preferred={2}
        )
        assert chosen.node_id == 2

    def test_no_live_nodes_raises(self, small_cluster):
        for nid in list(small_cluster.live_node_ids()):
            small_cluster.fail_node(nid)
        with pytest.raises(RuntimeError):
            FIFOScheduler().choose_node(small_cluster, MAP_SLOT, 0.0)


class TestRunJob:
    def test_wordcount_correctness(self, small_cluster):
        records = _load_wordcount_input(small_cluster)
        tracker = JobTracker(small_cluster)
        result = tracker.run_job(wordcount_job(), ["/in/batch1"])
        counts = dict(result.merged_output())
        expected = Counter(r.value for r in records)
        assert counts == dict(expected)

    def test_clock_advances_to_finish(self, small_cluster):
        _load_wordcount_input(small_cluster)
        tracker = JobTracker(small_cluster)
        result = tracker.run_job(wordcount_job(), ["/in/batch1"])
        assert small_cluster.clock.now == result.finish_time
        assert result.finish_time > result.start_time

    def test_phase_times_non_negative(self, small_cluster):
        _load_wordcount_input(small_cluster)
        result = JobTracker(small_cluster).run_job(wordcount_job(), ["/in/batch1"])
        assert result.phase_times.map > 0
        assert result.phase_times.shuffle >= 0
        assert result.phase_times.reduce >= 0

    def test_multiple_inputs(self, small_cluster):
        _load_wordcount_input(small_cluster, path="/in/a", seed=1)
        _load_wordcount_input(small_cluster, path="/in/b", seed=2)
        result = JobTracker(small_cluster).run_job(
            wordcount_job(), ["/in/a", "/in/b"]
        )
        total = sum(v for _, v in result.merged_output())
        assert total == 400

    def test_output_path_written(self, small_cluster):
        _load_wordcount_input(small_cluster)
        JobTracker(small_cluster).run_job(
            wordcount_job(), ["/in/batch1"], output_path="/out/w0"
        )
        assert small_cluster.hdfs.exists("/out/w0")

    def test_empty_input_list(self, small_cluster):
        result = JobTracker(small_cluster).run_job(wordcount_job(), [])
        assert result.outputs == {}
        assert result.span >= small_cluster.config.job_overhead

    def test_start_time_respected(self, small_cluster):
        _load_wordcount_input(small_cluster)
        result = JobTracker(small_cluster).run_job(
            wordcount_job(), ["/in/batch1"], start=500.0
        )
        assert result.start_time == 500.0

    def test_counters_populated(self, small_cluster):
        _load_wordcount_input(small_cluster)
        result = JobTracker(small_cluster).run_job(wordcount_job(), ["/in/batch1"])
        assert result.counters.get("map.tasks") >= 1
        assert result.counters.get("reduce.tasks") >= 1
        assert result.counters.get("map.input_records") == 200

    def test_reduce_nodes_recorded(self, small_cluster):
        _load_wordcount_input(small_cluster)
        result = JobTracker(small_cluster).run_job(wordcount_job(), ["/in/batch1"])
        assert set(result.reduce_nodes) == set(result.outputs)
        for node_id in result.reduce_nodes.values():
            assert node_id in small_cluster.live_node_ids()

    def test_larger_input_takes_longer(self):
        def span_for(n):
            cluster = Cluster(small_test_config(), seed=3)
            cluster.hdfs.create("/in", make_records(n, size=50_000, key_space=5))
            return JobTracker(cluster).run_job(wordcount_job(), ["/in"]).span

        assert span_for(2000) > span_for(200)

    def test_deterministic(self):
        def fingerprint():
            cluster = Cluster(small_test_config(), seed=3)
            _load_wordcount_input(cluster)
            r = JobTracker(cluster).run_job(wordcount_job(), ["/in/batch1"])
            return (r.finish_time, tuple(sorted(r.merged_output())))

        assert fingerprint() == fingerprint()


class TestFaultyJobs:
    def test_task_failures_slow_job_but_preserve_output(self):
        def run(prob):
            cluster = Cluster(small_test_config(), seed=3)
            records = make_records(500, key_space=5, size=20_000)
            cluster.hdfs.create("/in", records)
            injector = FaultInjector(task_failure_prob=prob, seed=1)
            tracker = JobTracker(cluster, fault_injector=injector)
            return tracker.run_job(wordcount_job(), ["/in"])

        clean = run(0.0)
        faulty = run(0.4)
        assert dict(faulty.merged_output()) == dict(clean.merged_output())
        assert faulty.span > clean.span
        assert faulty.counters.get("task.retries") >= 1
