"""Tests for the task timeline and utilisation analysis."""

from __future__ import annotations

import pytest

from repro.hadoop import Cluster, JobTracker, small_test_config
from repro.hadoop.node import MAP_SLOT, REDUCE_SLOT, TaskNode
from repro.hadoop.timeline import TaskInterval, Timeline, attach_timeline

from ..conftest import make_records, wordcount_job


class TestTimelineBasics:
    def test_record_and_query(self):
        tl = Timeline()
        tl.record(0, MAP_SLOT, 0.0, 2.0)
        tl.record(1, REDUCE_SLOT, 1.0, 4.0)
        assert len(tl) == 2
        assert tl.busy_time() == 5.0
        assert tl.busy_time(kind=MAP_SLOT) == 2.0
        assert tl.busy_time(node_id=1) == 3.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Timeline().record(0, MAP_SLOT, 2.0, 1.0)

    def test_span(self):
        tl = Timeline()
        tl.record(0, MAP_SLOT, 1.0, 2.0)
        tl.record(0, MAP_SLOT, 5.0, 9.0)
        assert tl.span() == (1.0, 9.0)

    def test_span_empty_raises(self):
        with pytest.raises(ValueError):
            Timeline().span()

    def test_utilisation(self):
        tl = Timeline()
        tl.record(0, MAP_SLOT, 0.0, 5.0)
        tl.record(1, MAP_SLOT, 0.0, 5.0)
        # 10 busy slot-seconds over 2 slots x 5 s -> fully utilised.
        assert tl.utilisation(2) == pytest.approx(1.0)
        assert tl.utilisation(4) == pytest.approx(0.5)

    def test_utilisation_horizon_clipping(self):
        tl = Timeline()
        tl.record(0, MAP_SLOT, 0.0, 10.0)
        assert tl.utilisation(1, horizon=(5.0, 15.0)) == pytest.approx(0.5)

    def test_utilisation_validation(self):
        tl = Timeline()
        tl.record(0, MAP_SLOT, 0.0, 1.0)
        with pytest.raises(ValueError):
            tl.utilisation(0)
        with pytest.raises(ValueError):
            tl.utilisation(1, horizon=(5.0, 5.0))

    def test_peak_concurrency(self):
        tl = Timeline()
        tl.record(0, MAP_SLOT, 0.0, 4.0)
        tl.record(1, MAP_SLOT, 1.0, 3.0)
        tl.record(2, MAP_SLOT, 2.0, 5.0)
        assert tl.peak_concurrency() == 3

    def test_peak_concurrency_boundary_not_overlap(self):
        tl = Timeline()
        tl.record(0, MAP_SLOT, 0.0, 2.0)
        tl.record(0, MAP_SLOT, 2.0, 4.0)  # back-to-back, same slot
        assert tl.peak_concurrency() == 1

    def test_per_node_busy(self):
        tl = Timeline()
        tl.record(0, MAP_SLOT, 0.0, 2.0)
        tl.record(0, REDUCE_SLOT, 0.0, 1.0)
        tl.record(3, MAP_SLOT, 0.0, 4.0)
        assert tl.per_node_busy() == {0: 3.0, 3: 4.0}


class TestAttachment:
    def test_node_reports_occupancy(self):
        node = TaskNode(5, map_slots=2, reduce_slots=1)
        tl = Timeline()
        node.slot_observer = tl.record
        node.occupy_slot(MAP_SLOT, 1.0, 2.0)
        assert tl.intervals() == [TaskInterval(5, MAP_SLOT, 1.0, 3.0)]

    def test_attach_to_cluster_records_job(self, small_cluster):
        tl = attach_timeline(small_cluster)
        small_cluster.hdfs.create("/in", make_records(100, key_space=5))
        JobTracker(small_cluster).run_job(wordcount_job(), ["/in"])
        assert tl.busy_time(kind=MAP_SLOT) > 0
        assert tl.busy_time(kind=REDUCE_SLOT) > 0
        # Concurrency never exceeds cluster slot capacity.
        assert tl.peak_concurrency(kind=MAP_SLOT) <= (
            small_cluster.config.total_map_slots
        )
        assert tl.peak_concurrency(kind=REDUCE_SLOT) <= (
            small_cluster.config.total_reduce_slots
        )

    def test_redoop_runtime_observable(self):
        from repro.core import RedoopRuntime
        from ..core.test_runtime import RATE, feed, make_query

        from repro.hadoop import Cluster

        cluster = Cluster(small_test_config(), seed=3)
        tl = attach_timeline(cluster)
        runtime = RedoopRuntime(cluster)
        runtime.register_query(make_query(), {"S1": RATE})
        feed(runtime, 50.0)
        runtime.run_recurrence("wc", 1)
        r2_start = len(tl)
        runtime.run_recurrence("wc", 2)
        # Window 2 schedules strictly fewer tasks than window 1.
        assert len(tl) - r2_start < r2_start
