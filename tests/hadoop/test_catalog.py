"""Unit tests for the batch-file catalog."""

from __future__ import annotations

import pytest

from repro.hadoop.catalog import BatchCatalog, BatchFile


def _batch(path, source, t0, t1):
    return BatchFile(path=path, source=source, t_start=t0, t_end=t1)


class TestBatchFile:
    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            _batch("/b", "S1", 10.0, 10.0)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            _batch("/b", "S1", 10.0, 5.0)

    @pytest.mark.parametrize(
        "start,end,expected",
        [
            (0.0, 5.0, False),   # fully before
            (0.0, 10.001, True), # touches the start
            (12.0, 15.0, True),  # inside
            (19.9, 30.0, True),  # touches the end
            (20.0, 30.0, False), # adjacent after (half-open)
            (5.0, 10.0, False),  # adjacent before (half-open)
        ],
    )
    def test_overlaps(self, start, end, expected):
        assert _batch("/b", "S1", 10.0, 20.0).overlaps(start, end) is expected


class TestBatchCatalog:
    def test_add_and_list(self):
        cat = BatchCatalog()
        cat.add(_batch("/a", "S1", 0, 10))
        cat.add(_batch("/b", "S1", 10, 20))
        assert [b.path for b in cat.batches("S1")] == ["/a", "/b"]

    def test_overlapping_add_rejected(self):
        cat = BatchCatalog()
        cat.add(_batch("/a", "S1", 0, 10))
        with pytest.raises(ValueError):
            cat.add(_batch("/b", "S1", 5, 15))

    def test_out_of_order_add_rejected(self):
        cat = BatchCatalog()
        cat.add(_batch("/a", "S1", 10, 20))
        with pytest.raises(ValueError):
            cat.add(_batch("/b", "S1", 0, 5))

    def test_sources_independent(self):
        cat = BatchCatalog()
        cat.add(_batch("/a", "S1", 0, 10))
        cat.add(_batch("/b", "S2", 5, 15))  # overlap across sources is fine
        assert cat.sources() == ["S1", "S2"]

    def test_files_overlapping_window(self):
        cat = BatchCatalog()
        cat.add(_batch("/a", "S1", 0, 10))
        cat.add(_batch("/b", "S1", 10, 20))
        cat.add(_batch("/c", "S1", 20, 30))
        hits = cat.files_overlapping(8, 22)
        assert [b.path for b in hits] == ["/a", "/b", "/c"]
        hits = cat.files_overlapping(10, 20)
        assert [b.path for b in hits] == ["/b"]

    def test_files_overlapping_filters_by_source(self):
        cat = BatchCatalog()
        cat.add(_batch("/a", "S1", 0, 10))
        cat.add(_batch("/b", "S2", 0, 10))
        hits = cat.files_overlapping(0, 10, source="S2")
        assert [b.path for b in hits] == ["/b"]

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            BatchCatalog().files_overlapping(5, 5)

    def test_covered_until(self):
        cat = BatchCatalog()
        assert cat.covered_until("S1") == 0.0
        cat.add(_batch("/a", "S1", 0, 10))
        assert cat.covered_until("S1") == 10.0

    def test_unknown_source_empty(self):
        assert BatchCatalog().batches("nope") == []
