"""Unit tests for the fault injector."""

from __future__ import annotations

import pytest

from repro.hadoop.faults import FaultInjector


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_failure_prob": -0.1},
            {"task_failure_prob": 1.0},
            {"cache_loss_fraction": 1.5},
            {"max_attempts": 0},
            {"failed_attempt_fraction": 0.0},
            {"failed_attempt_fraction": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultInjector(**kwargs)


class TestTaskFailures:
    def test_zero_probability_passthrough(self):
        inj = FaultInjector(task_failure_prob=0.0)
        assert inj.attempt_duration("t", 10.0) == (10.0, 0)

    def test_retries_add_time(self):
        inj = FaultInjector(task_failure_prob=0.9, seed=42, max_attempts=100)
        effective, retries = inj.attempt_duration("t", 10.0)
        assert retries >= 1
        assert effective == pytest.approx(10.0 + retries * 5.0)

    def test_deterministic_for_seed(self):
        a = FaultInjector(task_failure_prob=0.5, seed=7, max_attempts=50)
        b = FaultInjector(task_failure_prob=0.5, seed=7, max_attempts=50)
        results_a = [a.attempt_duration(f"t{i}", 1.0) for i in range(20)]
        results_b = [b.attempt_duration(f"t{i}", 1.0) for i in range(20)]
        assert results_a == results_b

    def test_exhausted_attempts_raise(self):
        inj = FaultInjector(
            task_failure_prob=0.999, max_attempts=1, seed=0
        )
        with pytest.raises(RuntimeError):
            for i in range(1000):
                inj.attempt_duration(f"t{i}", 1.0)


class TestCacheFailures:
    def test_zero_fraction_picks_nothing(self):
        inj = FaultInjector(cache_loss_fraction=0.0)
        assert inj.pick_cache_victims(["a", "b"]) == []

    def test_empty_pool_picks_nothing(self):
        inj = FaultInjector(cache_loss_fraction=0.5)
        assert inj.pick_cache_victims([]) == []

    def test_at_least_one_victim_when_enabled(self):
        inj = FaultInjector(cache_loss_fraction=0.01, seed=1)
        assert len(inj.pick_cache_victims(["a", "b", "c"])) == 1

    def test_fraction_respected(self):
        inj = FaultInjector(cache_loss_fraction=0.5, seed=1)
        pool = [f"c{i}" for i in range(100)]
        victims = inj.pick_cache_victims(pool)
        assert len(victims) == 50
        assert set(victims) <= set(pool)

    def test_full_fraction_takes_all(self):
        inj = FaultInjector(cache_loss_fraction=1.0, seed=1)
        assert inj.pick_cache_victims(["a", "b"]) == ["a", "b"]


class TestNodeVictim:
    def test_picks_from_pool(self):
        inj = FaultInjector(seed=3)
        assert inj.pick_node_victim([4, 5, 6]) in {4, 5, 6}

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            FaultInjector().pick_node_victim([])
