"""Unit tests for the fault injector."""

from __future__ import annotations

import pickle

import pytest

from repro.hadoop.faults import FaultInjector, TaskAttemptsExhaustedError


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_failure_prob": -0.1},
            {"task_failure_prob": 1.1},
            {"cache_loss_fraction": 1.5},
            {"cache_corruption_fraction": -0.2},
            {"max_attempts": 0},
            {"failed_attempt_fraction": 0.0},
            {"failed_attempt_fraction": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultInjector(**kwargs)

    def test_probability_one_is_valid(self):
        # The docstring always promised [0, 1]; the validator used to
        # enforce [0, 1). prob=1 is the deterministic-exhaustion knob.
        inj = FaultInjector(task_failure_prob=1.0, max_attempts=2)
        with pytest.raises(TaskAttemptsExhaustedError):
            inj.attempt_duration("t", 1.0)


class TestTaskFailures:
    def test_zero_probability_passthrough(self):
        inj = FaultInjector(task_failure_prob=0.0)
        assert inj.attempt_duration("t", 10.0) == (10.0, 0)

    def test_retries_add_time(self):
        inj = FaultInjector(task_failure_prob=0.9, seed=42, max_attempts=100)
        effective, retries = inj.attempt_duration("t", 10.0)
        assert retries >= 1
        assert effective == pytest.approx(10.0 + retries * 5.0)

    def test_deterministic_for_seed(self):
        a = FaultInjector(task_failure_prob=0.5, seed=7, max_attempts=50)
        b = FaultInjector(task_failure_prob=0.5, seed=7, max_attempts=50)
        results_a = [a.attempt_duration(f"t{i}", 1.0) for i in range(20)]
        results_b = [b.attempt_duration(f"t{i}", 1.0) for i in range(20)]
        assert results_a == results_b

    def test_exhausted_attempts_raise(self):
        inj = FaultInjector(
            task_failure_prob=0.999, max_attempts=1, seed=0
        )
        with pytest.raises(RuntimeError):
            for i in range(1000):
                inj.attempt_duration(f"t{i}", 1.0)

    def test_exhaustion_error_is_typed(self):
        inj = FaultInjector(task_failure_prob=1.0, max_attempts=3)
        with pytest.raises(TaskAttemptsExhaustedError) as exc_info:
            inj.attempt_duration("q/map/p0#1", 1.0)
        assert exc_info.value.task_key == "q/map/p0#1"
        assert exc_info.value.attempts == 3

    def test_doom_is_one_shot_and_matches_substring(self):
        inj = FaultInjector(seed=0)
        inj.doom("w2/")
        # Non-matching tasks are untouched even with prob == 0.
        assert inj.attempt_duration("q/merge/w1/0", 5.0) == (5.0, 0)
        with pytest.raises(TaskAttemptsExhaustedError):
            inj.attempt_duration("q/merge/w2/0", 5.0)
        # The doom was consumed: re-execution succeeds.
        assert inj.attempt_duration("q/merge/w2/0", 5.0) == (5.0, 0)
        assert inj.doomed() == []

    def test_doom_rejects_empty_marker(self):
        with pytest.raises(ValueError):
            FaultInjector().doom("")


class TestPickling:
    def test_round_trip_preserves_rng_position(self):
        inj = FaultInjector(task_failure_prob=0.5, seed=11, max_attempts=50)
        for i in range(10):
            inj.attempt_duration(f"warm{i}", 1.0)
        clone = pickle.loads(pickle.dumps(inj))
        draws = [inj.attempt_duration(f"t{i}", 1.0) for i in range(20)]
        cloned = [clone.attempt_duration(f"t{i}", 1.0) for i in range(20)]
        assert draws == cloned

    def test_round_trip_preserves_dooms(self):
        inj = FaultInjector(seed=0)
        inj.doom("w3/")
        clone = pickle.loads(pickle.dumps(inj))
        assert clone.doomed() == ["w3/"]
        with pytest.raises(TaskAttemptsExhaustedError):
            clone.attempt_duration("q/join/w3/1", 1.0)


class TestCacheFailures:
    def test_zero_fraction_picks_nothing(self):
        inj = FaultInjector(cache_loss_fraction=0.0)
        assert inj.pick_cache_victims(["a", "b"]) == []

    def test_empty_pool_picks_nothing(self):
        inj = FaultInjector(cache_loss_fraction=0.5)
        assert inj.pick_cache_victims([]) == []

    def test_at_least_one_victim_when_enabled(self):
        inj = FaultInjector(cache_loss_fraction=0.01, seed=1)
        assert len(inj.pick_cache_victims(["a", "b", "c"])) == 1

    def test_fraction_respected(self):
        inj = FaultInjector(cache_loss_fraction=0.5, seed=1)
        pool = [f"c{i}" for i in range(100)]
        victims = inj.pick_cache_victims(pool)
        assert len(victims) == 50
        assert set(victims) <= set(pool)

    def test_full_fraction_takes_all(self):
        inj = FaultInjector(cache_loss_fraction=1.0, seed=1)
        assert inj.pick_cache_victims(["a", "b"]) == ["a", "b"]

    def test_fraction_override(self):
        inj = FaultInjector(cache_loss_fraction=0.0, seed=1)
        pool = [f"c{i}" for i in range(10)]
        assert len(inj.pick_cache_victims(pool, fraction=0.3)) == 3

    def test_corruption_victims_use_their_own_fraction(self):
        inj = FaultInjector(cache_corruption_fraction=0.5, seed=2)
        pool = [f"c{i}" for i in range(8)]
        victims = inj.pick_corruption_victims(pool)
        assert len(victims) == 4
        assert set(victims) <= set(pool)
        assert FaultInjector(seed=2).pick_corruption_victims(pool) == []


class TestNodeVictim:
    def test_picks_from_pool(self):
        inj = FaultInjector(seed=3)
        assert inj.pick_node_victim([4, 5, 6]) in {4, 5, 6}

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            FaultInjector().pick_node_victim([])
