"""Unit tests for job specs and shuffle mechanics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hadoop.job import MapReduceJob, default_partitioner, stable_hash
from repro.hadoop.shuffle import (
    apply_combiner,
    group_sorted,
    partition_pairs,
    run_reduce_partition,
    sort_pairs,
)

from ..conftest import wordcount_job


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("alpha") == stable_hash("alpha")

    def test_distinguishes_types(self):
        assert stable_hash("1") != stable_hash(1)

    @given(st.text(max_size=50))
    def test_non_negative(self, s):
        assert stable_hash(s) >= 0


class TestPartitioner:
    def test_in_range(self):
        for key in ("a", "b", 42, ("x", 1)):
            assert 0 <= default_partitioner(key, 7) < 7

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            default_partitioner("k", 0)

    @given(st.text(max_size=20), st.integers(1, 64))
    @settings(max_examples=50)
    def test_stable_assignment_property(self, key, n):
        assert default_partitioner(key, n) == default_partitioner(key, n)


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            wordcount_job(num_reducers=0)

    def test_pair_size_validation(self):
        job = wordcount_job()
        with pytest.raises(ValueError):
            MapReduceJob(
                name="bad",
                mapper=job.mapper,
                reducer=job.reducer,
                num_reducers=1,
                intermediate_pair_size=0,
            )

    def test_with_name(self):
        job = wordcount_job().with_name("renamed")
        assert job.name == "renamed"

    def test_partition_of_uses_partitioner(self):
        job = wordcount_job(num_reducers=5)
        assert job.partition_of("k") == default_partitioner("k", 5)


class TestShuffle:
    def test_partition_pairs_respects_partitioner(self):
        job = wordcount_job(num_reducers=3)
        pairs = [("a", 1), ("b", 1), ("a", 2)]
        buckets = partition_pairs(pairs, job)
        for partition, bucket in buckets.items():
            for key, _ in bucket:
                assert job.partition_of(key) == partition
        assert sum(len(b) for b in buckets.values()) == 3

    def test_sort_pairs_orders_by_key(self):
        pairs = [("b", 1), ("a", 2), ("a", 1)]
        assert [k for k, _ in sort_pairs(pairs)] == ["a", "a", "b"]

    def test_sort_handles_mixed_key_types(self):
        pairs = [(2, "x"), ("a", "y"), (1, "z")]
        # Must not raise; ints group before strs (by type name).
        keys = [k for k, _ in sort_pairs(pairs)]
        assert set(keys) == {1, 2, "a"}

    def test_group_sorted(self):
        groups = dict(group_sorted(sort_pairs([("a", 1), ("b", 5), ("a", 2)])))
        assert groups == {"a": [1, 2], "b": [5]}

    def test_run_reduce_partition_wordcount(self):
        job = wordcount_job()
        out = run_reduce_partition([("a", 1), ("a", 1), ("b", 1)], job.reducer)
        assert dict(out) == {"a": 2, "b": 1}

    def test_apply_combiner_preserves_totals(self):
        job = wordcount_job()
        pairs = [("a", 1)] * 10 + [("b", 1)] * 5
        combined = apply_combiner(pairs, job.combiner)
        assert dict(combined) == {"a": 10, "b": 5}
        assert len(combined) == 2  # actually compacted

    @given(
        st.lists(
            st.tuples(st.sampled_from("abcde"), st.integers(0, 10)),
            max_size=60,
        )
    )
    @settings(max_examples=40)
    def test_combiner_invariance_property(self, pairs):
        """Reducing combined output equals reducing raw pairs (sum is algebraic)."""
        job = wordcount_job()
        direct = dict(run_reduce_partition(pairs, job.reducer))
        combined = apply_combiner(pairs, job.combiner)
        via_combiner = dict(run_reduce_partition(combined, job.reducer))
        assert direct == via_combiner
