"""Unit tests for repro.hadoop.types."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hadoop.types import (
    GIGABYTE,
    MEGABYTE,
    Record,
    TaggedOutput,
    records_size,
    records_span,
)


class TestRecord:
    def test_fields(self):
        r = Record(ts=5.0, value={"user": 1}, size=42)
        assert r.ts == 5.0
        assert r.value == {"user": 1}
        assert r.size == 42

    def test_default_size(self):
        assert Record(ts=0.0, value="x").size == 100

    def test_is_frozen(self):
        r = Record(ts=0.0, value="x")
        with pytest.raises(AttributeError):
            r.ts = 1.0

    def test_in_range_inclusive_start(self):
        assert Record(ts=10.0, value=None).in_range(10.0, 20.0)

    def test_in_range_exclusive_end(self):
        assert not Record(ts=20.0, value=None).in_range(10.0, 20.0)

    def test_in_range_outside(self):
        assert not Record(ts=5.0, value=None).in_range(10.0, 20.0)


class TestRecordsHelpers:
    def test_records_size_sums_bytes(self):
        recs = [Record(ts=0, value=None, size=10), Record(ts=1, value=None, size=32)]
        assert records_size(recs) == 42

    def test_records_size_empty(self):
        assert records_size([]) == 0

    def test_records_span(self):
        recs = [Record(ts=t, value=None) for t in (3.0, 1.0, 2.0)]
        assert records_span(recs) == (1.0, 3.0)

    def test_records_span_empty_raises(self):
        with pytest.raises(ValueError):
            records_span([])

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=30))
    def test_span_bounds_property(self, timestamps):
        recs = [Record(ts=t, value=None) for t in timestamps]
        lo, hi = records_span(recs)
        assert lo <= hi
        assert all(lo <= r.ts <= hi for r in recs)


class TestTaggedOutput:
    def test_unpacking(self):
        source, value = TaggedOutput("S1", 99)
        assert source == "S1"
        assert value == 99


def test_byte_constants():
    assert MEGABYTE == 2**20
    assert GIGABYTE == 2**30
