"""Unit tests for task nodes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hadoop.node import MAP_SLOT, REDUCE_SLOT, NodeError, TaskNode


@pytest.fixture
def node() -> TaskNode:
    return TaskNode(0, map_slots=2, reduce_slots=1)


class TestSlots:
    def test_initially_free(self, node):
        assert node.earliest_slot_time(MAP_SLOT) == 0.0
        assert node.earliest_slot_time(REDUCE_SLOT) == 0.0

    def test_occupy_returns_finish_time(self, node):
        assert node.occupy_slot(MAP_SLOT, start=1.0, duration=2.0) == 3.0

    def test_parallel_slots(self, node):
        # Two map slots: two tasks at t=0 run in parallel.
        node.occupy_slot(MAP_SLOT, 0.0, 5.0)
        assert node.occupy_slot(MAP_SLOT, 0.0, 5.0) == 5.0
        # Third task queues behind the earliest finishing slot.
        assert node.occupy_slot(MAP_SLOT, 0.0, 1.0) == 6.0

    def test_task_waits_for_slot(self, node):
        node.occupy_slot(REDUCE_SLOT, 0.0, 10.0)
        assert node.occupy_slot(REDUCE_SLOT, 2.0, 1.0) == 11.0

    def test_task_waits_for_start(self, node):
        assert node.occupy_slot(MAP_SLOT, 5.0, 1.0) == 6.0

    def test_negative_duration_rejected(self, node):
        with pytest.raises(ValueError):
            node.occupy_slot(MAP_SLOT, 0.0, -1.0)

    def test_unknown_kind_rejected(self, node):
        with pytest.raises(ValueError):
            node.occupy_slot("gpu", 0.0, 1.0)

    def test_load_at(self, node):
        node.occupy_slot(MAP_SLOT, 0.0, 4.0)
        node.occupy_slot(REDUCE_SLOT, 0.0, 2.0)
        assert node.load_at(0.0) == pytest.approx(6.0)
        assert node.load_at(3.0) == pytest.approx(1.0)
        assert node.load_at(10.0) == 0.0

    def test_reset_slots(self, node):
        node.occupy_slot(MAP_SLOT, 0.0, 100.0)
        node.reset_slots(now=50.0)
        assert node.earliest_slot_time(MAP_SLOT) == 50.0

    def test_minimum_slot_validation(self):
        with pytest.raises(ValueError):
            TaskNode(0, map_slots=0, reduce_slots=1)

    @given(
        durations=st.lists(st.floats(0.1, 10), min_size=1, max_size=20),
        slots=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_never_more_concurrency_than_slots(self, durations, slots):
        node = TaskNode(0, map_slots=slots, reduce_slots=1)
        intervals = []
        for d in durations:
            finish = node.occupy_slot(MAP_SLOT, 0.0, d)
            intervals.append((finish - d, finish))
        # At any interval midpoint, no more than `slots` intervals overlap
        # (midpoints are interior, avoiding float boundary artefacts).
        for s, f in intervals:
            probe = (s + f) / 2
            overlapping = sum(1 for s2, f2 in intervals if s2 < probe < f2)
            assert overlapping <= slots


class TestLocalFS:
    def test_store_and_read(self, node):
        node.store_local("cache/S1P1", size=100, payload=[1, 2, 3])
        lf = node.read_local("cache/S1P1")
        assert lf.size == 100
        assert lf.payload == [1, 2, 3]

    def test_overwrite_allowed(self, node):
        node.store_local("f", size=1)
        node.store_local("f", size=2)
        assert node.read_local("f").size == 2

    def test_missing_read_raises(self, node):
        with pytest.raises(NodeError):
            node.read_local("nope")

    def test_delete(self, node):
        node.store_local("f", size=1)
        node.delete_local("f")
        assert not node.has_local("f")

    def test_delete_missing_raises(self, node):
        with pytest.raises(NodeError):
            node.delete_local("nope")

    def test_local_bytes(self, node):
        node.store_local("a", size=10)
        node.store_local("b", size=32)
        assert node.local_bytes == 42

    def test_negative_size_rejected(self, node):
        with pytest.raises(ValueError):
            node.store_local("f", size=-1)


class TestFailure:
    def test_fail_returns_lost_files(self, node):
        node.store_local("a", size=1)
        node.store_local("b", size=1)
        assert node.fail() == ["a", "b"]
        assert not node.alive

    def test_dead_node_rejects_operations(self, node):
        node.fail()
        with pytest.raises(NodeError):
            node.occupy_slot(MAP_SLOT, 0.0, 1.0)
        with pytest.raises(NodeError):
            node.store_local("f", size=1)

    def test_has_local_false_when_dead(self, node):
        node.store_local("f", size=1)
        node.fail()
        assert not node.has_local("f")

    def test_double_fail_raises(self, node):
        node.fail()
        with pytest.raises(NodeError):
            node.fail()

    def test_recover_resets_state(self, node):
        node.store_local("f", size=1)
        node.occupy_slot(MAP_SLOT, 0.0, 100.0)
        node.fail()
        node.recover(now=42.0)
        assert node.alive
        assert not node.has_local("f")
        assert node.earliest_slot_time(MAP_SLOT) == 42.0

    def test_recover_alive_raises(self, node):
        with pytest.raises(NodeError):
            node.recover()
