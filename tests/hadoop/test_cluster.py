"""Unit tests for the cluster facade."""

from __future__ import annotations

import pytest

from repro.hadoop import Cluster, small_test_config
from repro.hadoop.node import MAP_SLOT

from ..conftest import make_records


class TestTopology:
    def test_node_count(self, small_cluster):
        assert small_cluster.num_live_nodes == 4
        assert len(list(small_cluster.nodes())) == 4

    def test_node_lookup(self, small_cluster):
        assert small_cluster.node(2).node_id == 2

    def test_unknown_node_raises(self, small_cluster):
        with pytest.raises(KeyError):
            small_cluster.node(99)

    def test_live_node_ids_sorted(self, small_cluster):
        assert small_cluster.live_node_ids() == [0, 1, 2, 3]


class TestFailureIntegration:
    def test_fail_node_removes_from_live(self, small_cluster):
        small_cluster.fail_node(1)
        assert small_cluster.live_node_ids() == [0, 2, 3]
        assert small_cluster.counters.get("cluster.node_failures") == 1

    def test_fail_node_returns_lost_cache_names(self, small_cluster):
        small_cluster.node(1).store_local("cache/x", size=10)
        assert small_cluster.fail_node(1) == ["cache/x"]

    def test_fail_node_rereplicates_hdfs(self, small_cluster):
        hfile = small_cluster.hdfs.create("/f", make_records(50, size=100 * 1024))
        victim = next(iter(hfile.replica_nodes()))
        small_cluster.fail_node(victim)
        assert victim not in small_cluster.hdfs.open("/f").replica_nodes()

    def test_recover_node(self, small_cluster):
        small_cluster.fail_node(3)
        small_cluster.recover_node(3)
        assert 3 in small_cluster.live_node_ids()


class TestHousekeeping:
    def test_reset_slots(self, small_cluster):
        small_cluster.node(0).occupy_slot(MAP_SLOT, 0.0, 100.0)
        small_cluster.clock.advance(5.0)
        small_cluster.reset_slots()
        assert small_cluster.node(0).earliest_slot_time(MAP_SLOT) == 5.0

    def test_total_cache_bytes(self, small_cluster):
        small_cluster.node(0).store_local("a", size=10)
        small_cluster.node(1).store_local("b", size=20)
        assert small_cluster.total_cache_bytes() == 30

    def test_deterministic_given_seed(self):
        def fingerprint(seed):
            c = Cluster(small_test_config(), seed=seed)
            f = c.hdfs.create("/f", make_records(50, size=100 * 1024))
            return [b.replicas for b in f.blocks]

        assert fingerprint(9) == fingerprint(9)
