"""Unit tests for the I/O-dominant cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hadoop.config import ClusterConfig
from repro.hadoop.costmodel import CostModel
from repro.hadoop.types import MEGABYTE


@pytest.fixture
def model() -> CostModel:
    cfg = ClusterConfig(
        disk_bandwidth=100 * MEGABYTE,
        network_bandwidth=50 * MEGABYTE,
        task_overhead=0.1,
    )
    return CostModel(cfg)


class TestPrimitives:
    def test_local_read(self, model):
        assert model.local_read_time(100 * MEGABYTE) == pytest.approx(1.0)

    def test_remote_read_bounded_by_network(self, model):
        # network (50 MB/s) is slower than disk (100 MB/s)
        assert model.remote_read_time(50 * MEGABYTE) == pytest.approx(1.0)

    def test_remote_never_faster_than_local(self, model):
        nbytes = 10 * MEGABYTE
        assert model.remote_read_time(nbytes) >= model.local_read_time(nbytes)

    def test_hdfs_write_includes_replication_hop(self, model):
        plain = model.write_time(50 * MEGABYTE)
        hdfs = model.hdfs_write_time(50 * MEGABYTE)
        assert hdfs > plain

    def test_hdfs_write_no_pipeline_without_replication(self):
        cfg = ClusterConfig(replication=1)
        m = CostModel(cfg)
        assert m.hdfs_write_time(MEGABYTE) == pytest.approx(m.write_time(MEGABYTE))

    def test_sort_time_zero_for_tiny_inputs(self, model):
        assert model.sort_time(0) == 0.0
        assert model.sort_time(1) == 0.0

    def test_sort_superlinear(self, model):
        assert model.sort_time(2000) > 2 * model.sort_time(1000)


class TestMapTaskDuration:
    def test_local_cheaper_than_remote(self, model):
        kwargs = dict(input_bytes=64 * MEGABYTE, input_records=1000, output_bytes=MEGABYTE)
        local = model.map_task_duration(**kwargs, data_local=True)
        remote = model.map_task_duration(**kwargs, data_local=False)
        assert local < remote

    def test_includes_overhead(self, model):
        d = model.map_task_duration(0, 0, 0, data_local=True)
        assert d == pytest.approx(0.1)

    def test_monotone_in_input(self, model):
        small = model.map_task_duration(MEGABYTE, 100, 0, data_local=True)
        big = model.map_task_duration(10 * MEGABYTE, 1000, 0, data_local=True)
        assert big > small


class TestReduceTaskDuration:
    def test_cached_input_cheaper_than_shuffled(self, model):
        # Same total volume: all shuffled vs. all from local cache.
        shuffled = model.reduce_task_duration(
            shuffled_bytes=10 * MEGABYTE,
            shuffled_records=100_000,
            cached_bytes=0,
            cached_records=0,
            output_bytes=MEGABYTE,
        )
        cached = model.reduce_task_duration(
            shuffled_bytes=0,
            shuffled_records=0,
            cached_bytes=10 * MEGABYTE,
            cached_records=100_000,
            output_bytes=MEGABYTE,
        )
        assert cached < shuffled

    def test_remote_cache_read_more_expensive(self, model):
        kwargs = dict(
            shuffled_bytes=0,
            shuffled_records=0,
            cached_bytes=10 * MEGABYTE,
            cached_records=1000,
            output_bytes=0,
        )
        local = model.reduce_task_duration(**kwargs, cache_local=True)
        remote = model.reduce_task_duration(**kwargs, cache_local=False)
        assert remote > local


class TestTaskIOCost:
    def test_all_local_matches_local_read(self, model):
        nbytes = 8 * MEGABYTE
        assert model.task_io_cost(nbytes, bytes_local=nbytes) == pytest.approx(
            model.local_read_time(nbytes)
        )

    def test_all_remote_matches_remote_read(self, model):
        nbytes = 8 * MEGABYTE
        assert model.task_io_cost(nbytes) == pytest.approx(
            model.remote_read_time(nbytes)
        )

    def test_local_bytes_exceeding_total_rejected(self, model):
        with pytest.raises(ValueError):
            model.task_io_cost(10, bytes_local=11)

    @given(
        total=st.floats(0, 1e9),
        frac=st.floats(0, 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_more_locality_never_costs_more(self, total, frac):
        model = CostModel(
            ClusterConfig(
                disk_bandwidth=100 * MEGABYTE, network_bandwidth=50 * MEGABYTE
            )
        )
        local = min(total * frac, total)
        assert model.task_io_cost(total, bytes_local=local) <= (
            model.task_io_cost(total, bytes_local=0.0) + 1e-9
        )
