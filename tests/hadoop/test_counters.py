"""Unit tests for repro.hadoop.counters."""

from __future__ import annotations

import pytest

from repro.hadoop.counters import Counters, PhaseTimes


class TestCounters:
    def test_unknown_counter_reads_zero(self):
        assert Counters().get("never.set") == 0.0

    def test_increment_accumulates(self):
        c = Counters()
        c.increment("hdfs.bytes_read", 10)
        c.increment("hdfs.bytes_read", 5)
        assert c.get("hdfs.bytes_read") == 15

    def test_default_increment_is_one(self):
        c = Counters()
        c.increment("map.tasks")
        c.increment("map.tasks")
        assert c.get("map.tasks") == 2

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counters().increment("x", -1)

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("x", 1)
        b.increment("x", 2)
        b.increment("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3
        assert b.get("x") == 2  # merge does not mutate the source

    def test_iteration_sorted(self):
        c = Counters()
        c.increment("b")
        c.increment("a")
        assert [name for name, _ in c] == ["a", "b"]

    def test_as_dict_snapshot(self):
        c = Counters()
        c.increment("x", 7)
        snap = c.as_dict()
        c.increment("x", 1)
        assert snap == {"x": 7}


class TestPhaseTimes:
    def test_total(self):
        p = PhaseTimes(map=1.0, shuffle=2.0, reduce=3.0)
        assert p.total == 6.0

    def test_add_accumulates(self):
        p = PhaseTimes(map=1.0)
        p.add(PhaseTimes(map=2.0, shuffle=1.0, reduce=0.5))
        assert p.map == 3.0
        assert p.shuffle == 1.0
        assert p.reduce == 0.5

    def test_scaled(self):
        p = PhaseTimes(map=2.0, shuffle=4.0, reduce=6.0).scaled(0.5)
        assert (p.map, p.shuffle, p.reduce) == (1.0, 2.0, 3.0)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimes().scaled(-1.0)

    def test_as_dict(self):
        p = PhaseTimes(map=1.0, shuffle=2.0, reduce=3.0)
        assert p.as_dict() == {"map": 1.0, "shuffle": 2.0, "reduce": 3.0}
