"""Unit tests for repro.hadoop.config."""

from __future__ import annotations

import pytest

from repro.hadoop.config import DEFAULT_CONFIG, ClusterConfig, small_test_config
from repro.hadoop.types import MEGABYTE


class TestDefaults:
    def test_paper_cluster_shape(self):
        # Sec 6.1: 30 slaves, 6 map + 2 reduce slots, 64 MB blocks, 3 replicas.
        assert DEFAULT_CONFIG.num_nodes == 30
        assert DEFAULT_CONFIG.map_slots_per_node == 6
        assert DEFAULT_CONFIG.reduce_slots_per_node == 2
        assert DEFAULT_CONFIG.block_size == 64 * MEGABYTE
        assert DEFAULT_CONFIG.replication == 3

    def test_total_slots(self):
        assert DEFAULT_CONFIG.total_map_slots == 180
        assert DEFAULT_CONFIG.total_reduce_slots == 60


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"map_slots_per_node": 0},
            {"reduce_slots_per_node": 0},
            {"block_size": 0},
            {"replication": 0},
            {"disk_bandwidth": 0.0},
            {"network_bandwidth": -1.0},
            {"default_num_reducers": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)


class TestOverrides:
    def test_with_overrides_changes_only_named(self):
        cfg = DEFAULT_CONFIG.with_overrides(num_nodes=5)
        assert cfg.num_nodes == 5
        assert cfg.block_size == DEFAULT_CONFIG.block_size

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.num_nodes = 99


class TestSmallTestConfig:
    def test_shape(self):
        cfg = small_test_config()
        assert cfg.num_nodes == 4
        assert cfg.block_size == 4 * MEGABYTE
        assert cfg.default_num_reducers == 8

    def test_explicit_reducers(self):
        assert small_test_config(num_reducers=3).default_num_reducers == 3
