"""Unit tests for repro.hadoop.simclock."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hadoop.simclock import EventQueue, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimClock(1.0)
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(3.0)
        with pytest.raises(ValueError):
            clock.advance_to(2.9)

    @given(st.lists(st.floats(0, 100), max_size=20))
    def test_monotonic_property(self, deltas):
        clock = SimClock()
        prev = clock.now
        for d in deltas:
            clock.advance(d)
            assert clock.now >= prev
            prev = clock.now


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_tiebreak(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop() == (1.0, "first")
        assert q.pop() == (1.0, "second")

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(4.0, None)
        assert q.peek_time() == 4.0
        assert len(q) == 1  # peek does not consume

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, None)

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, "x")
        assert q
        assert len(q) == 1

    def test_payloads_need_not_be_comparable(self):
        q = EventQueue()
        q.push(1.0, {"dict": 1})
        q.push(1.0, {"dict": 2})
        assert q.pop()[1] == {"dict": 1}
