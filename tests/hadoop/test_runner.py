"""Unit tests for the plain-Hadoop recurring driver (baseline)."""

from __future__ import annotations

from collections import Counter


from repro.hadoop import (
    BatchCatalog,
    BatchFile,
    PlainHadoopDriver,
    window_filtered_job,
)
from repro.hadoop.types import Record

from ..conftest import make_records, wordcount_job


def _setup_batches(cluster, n_batches=4, batch_seconds=10.0, per_batch=50):
    """Create `n_batches` consecutive batch files of word records."""
    catalog = BatchCatalog()
    all_records = []
    for i in range(n_batches):
        t0 = i * batch_seconds
        records = make_records(
            per_batch, t0=t0, dt=batch_seconds / per_batch, key_space=5, seed=i
        )
        path = f"/in/batch{i}"
        cluster.hdfs.create(path, records)
        catalog.add(
            BatchFile(path=path, source="S1", t_start=t0, t_end=t0 + batch_seconds)
        )
        all_records.extend(records)
    return catalog, all_records


class TestWindowFilteredJob:
    def test_filters_records_outside_window(self):
        job = window_filtered_job(wordcount_job(), 10.0, 20.0)
        assert list(job.mapper(Record(ts=5.0, value="w"))) == []
        assert list(job.mapper(Record(ts=15.0, value="w"))) == [("w", 1)]
        assert list(job.mapper(Record(ts=20.0, value="w"))) == []


class TestRunWindow:
    def test_output_matches_window_contents(self, small_cluster):
        catalog, records = _setup_batches(small_cluster)
        driver = PlainHadoopDriver(small_cluster)
        execution = driver.run_window(wordcount_job(), catalog, 10.0, 30.0)
        expected = Counter(r.value for r in records if 10.0 <= r.ts < 30.0)
        assert dict(execution.output()) == dict(expected)

    def test_window_metadata(self, small_cluster):
        catalog, _ = _setup_batches(small_cluster)
        execution = PlainHadoopDriver(small_cluster).run_window(
            wordcount_job(), catalog, 0.0, 10.0, index=3
        )
        assert execution.index == 3
        assert (execution.window_start, execution.window_end) == (0.0, 10.0)
        assert execution.response_time > 0

    def test_source_filter(self, small_cluster):
        catalog, _ = _setup_batches(small_cluster)
        other = make_records(10, t0=0.0, key_space=1, seed=99)
        small_cluster.hdfs.create("/in/other", other)
        catalog.add(BatchFile(path="/in/other", source="S2", t_start=0.0, t_end=10.0))
        execution = PlainHadoopDriver(small_cluster).run_window(
            wordcount_job(), catalog, 0.0, 10.0, sources=["S2"]
        )
        assert sum(v for _, v in execution.output()) == 10


class TestRunRecurring:
    def test_windows_run_sequentially(self, small_cluster):
        catalog, _ = _setup_batches(small_cluster)
        driver = PlainHadoopDriver(small_cluster)
        windows = [(0.0, 20.0), (10.0, 30.0), (20.0, 40.0)]
        executions = driver.run_recurring(wordcount_job(), catalog, windows)
        assert len(executions) == 3
        finishes = [e.result.finish_time for e in executions]
        assert finishes == sorted(finishes)
        # Each job starts no earlier than its window closes.
        for execution in executions:
            assert execution.result.start_time >= execution.window_end

    def test_rereads_overlapping_data(self, small_cluster):
        """The baseline's defining inefficiency: overlapping bytes re-read."""
        catalog, _ = _setup_batches(small_cluster)
        driver = PlainHadoopDriver(small_cluster)
        executions = driver.run_recurring(
            wordcount_job(), catalog, [(0.0, 20.0), (10.0, 30.0)]
        )
        read_1 = executions[0].result.counters.get("map.input_bytes")
        read_2 = executions[1].result.counters.get("map.input_bytes")
        # Both windows read the shared batch [10, 20) in full.
        assert read_1 > 0 and read_2 > 0
