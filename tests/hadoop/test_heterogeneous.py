"""Heterogeneous clusters: node speeds and Eq. 4 load balancing."""

from __future__ import annotations

import pytest

from repro.core.scheduler import CacheAwareTaskScheduler, MapTaskRequest
from repro.hadoop import Cluster, JobTracker, small_test_config
from repro.hadoop.node import MAP_SLOT, TaskNode
from repro.hadoop.timeline import attach_timeline
from repro.hadoop.types import MEGABYTE

from ..conftest import make_records, wordcount_job


class TestNodeSpeed:
    def test_slow_node_stretches_tasks(self):
        fast = TaskNode(0, map_slots=1, reduce_slots=1, speed=1.0)
        slow = TaskNode(1, map_slots=1, reduce_slots=1, speed=0.5)
        assert fast.occupy_slot(MAP_SLOT, 0.0, 10.0) == 10.0
        assert slow.occupy_slot(MAP_SLOT, 0.0, 10.0) == 20.0

    def test_fast_node_compresses_tasks(self):
        node = TaskNode(0, map_slots=1, reduce_slots=1, speed=2.0)
        assert node.occupy_slot(MAP_SLOT, 0.0, 10.0) == 5.0

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            TaskNode(0, map_slots=1, reduce_slots=1, speed=0.0)

    def test_default_speed_is_one(self):
        assert TaskNode(0, map_slots=1, reduce_slots=1).speed == 1.0


class TestHeterogeneousCluster:
    def test_speeds_applied(self):
        cluster = Cluster(
            small_test_config(), seed=1, node_speeds={0: 0.25, 3: 2.0}
        )
        assert cluster.node(0).speed == 0.25
        assert cluster.node(1).speed == 1.0
        assert cluster.node(3).speed == 2.0

    def test_unknown_node_speed_rejected(self):
        with pytest.raises(ValueError):
            Cluster(small_test_config(), node_speeds={99: 2.0})

    def test_job_slower_on_degraded_cluster(self):
        def span(speeds):
            cluster = Cluster(small_test_config(), seed=2, node_speeds=speeds)
            cluster.hdfs.create(
                "/in", make_records(400, size=50_000, key_space=5)
            )
            return JobTracker(cluster).run_job(wordcount_job(), ["/in"]).span

        healthy = span(None)
        degraded = span({0: 0.2, 1: 0.2})
        assert degraded > healthy

    def test_eq4_routes_around_slow_node(self):
        """A slow node accumulates load and loses future placements."""
        cluster = Cluster(
            small_test_config(num_nodes=4), seed=2, node_speeds={0: 0.1}
        )
        scheduler = CacheAwareTaskScheduler(cluster)
        timeline = attach_timeline(cluster)
        request = MapTaskRequest(
            query="q", pid="p", input_bytes=8 * MEGABYTE, locations=()
        )
        now = 0.0
        for _ in range(40):
            node = scheduler.select_map_node(request, now)
            node.occupy_slot(MAP_SLOT, now, 4.0)
        per_node = {
            nid: len(timeline.intervals(node_id=nid))
            for nid in cluster.live_node_ids()
        }
        # The 0.1x node gets markedly fewer tasks than its healthy peers.
        assert per_node[0] < min(per_node[n] for n in (1, 2, 3))
