"""Soak test: a long-lived recurring query under periodic failures.

Fifty recurrences with cache failures injected every third window and a
node failure (plus recovery) midway — the kind of lifetime a deployed
recurring query actually sees. Asserts correctness at every window and
that resource bookkeeping stays bounded.
"""

from __future__ import annotations

from collections import Counter as PyCounter

import pytest

from repro.core import RecoveryManager, RecurringQuery, RedoopRuntime, WindowSpec, merging_finalizer
from repro.hadoop import BatchFile, Cluster, FaultInjector, Record, small_test_config

from ..conftest import wordcount_job

WIN, SLIDE = 60.0, 15.0  # 4 panes per window, 1 new per slide
RECURRENCES = 50


def _batch_records(i: int):
    import random

    rng = random.Random(i)
    t0 = i * SLIDE
    return [
        Record(ts=t0 + j * SLIDE / 25, value=f"k{rng.randrange(8)}", size=100)
        for j in range(25)
    ]


@pytest.mark.parametrize("inject_failures", [False, True])
def test_fifty_recurrences(inject_failures):
    cluster = Cluster(small_test_config(num_nodes=6), seed=13)
    runtime = RedoopRuntime(cluster)
    query = RecurringQuery(
        name="soak",
        job=wordcount_job(num_reducers=6, name="soak"),
        windows={"S1": WindowSpec(win=WIN, slide=SLIDE)},
        finalize=merging_finalizer(sum),
    )
    runtime.register_query(query, {"S1": 500_000.0})
    recovery = RecoveryManager(runtime)
    injector = FaultInjector(cache_loss_fraction=0.3, seed=4)

    all_records = []
    batches_fed = 0

    def feed_until(t):
        nonlocal batches_fed
        while batches_fed * SLIDE < t - 1e-9:
            records = _batch_records(batches_fed)
            runtime.ingest(
                BatchFile(
                    path=f"/b/{batches_fed}",
                    source="S1",
                    t_start=batches_fed * SLIDE,
                    t_end=(batches_fed + 1) * SLIDE,
                ),
                records,
            )
            all_records.extend(records)
            batches_fed += 1

    spec = query.windows["S1"]
    cache_entry_counts = []
    for k in range(1, RECURRENCES + 1):
        feed_until(spec.execution_time(k))
        if inject_failures and k % 3 == 0:
            recovery.inject_pane_cache_failures(injector)
        if inject_failures and k == 25:
            victim = cluster.live_node_ids()[0]
            recovery.fail_node(victim)
        if inject_failures and k == 30:
            recovery.recover_node(victim)

        result = runtime.run_recurrence("soak", k)
        start, end = result.window_bounds["S1"]
        expected = PyCounter(r.value for r in all_records if start <= r.ts < end)
        assert dict(result.output) == dict(expected), f"window {k} diverged"
        cache_entry_counts.append(
            sum(len(r.live_entries()) for r in runtime.registries().values())
        )

    # Bookkeeping stays bounded: entries plateau, never balloon.
    steady = cache_entry_counts[10:]
    assert max(steady) <= 2 * min(s for s in steady if s > 0)
    assert runtime.counters.get("cache.entries_purged") > 0
    state = runtime._states["soak"]
    assert len(state.pane_work) <= 2 * spec.panes_per_window
    assert runtime.controller.matrix("soak").num_tracked_cells() <= 16
