"""Integration: Redoop and plain Hadoop compute identical window answers.

These tests run the full stack — generators, packer, caches, scheduler,
runtime vs. catalog + job tracker — on downscaled workloads and check
output equivalence window by window, including under adaptivity and
injected failures. This is the core correctness claim of incremental
processing: caching must never change the answer.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ExperimentConfig,
    build_workload,
    run_hadoop_series,
    run_redoop_series,
)
from repro.hadoop.config import small_test_config
from repro.hadoop.faults import FaultInjector


def config(kind="aggregation", **kwargs):
    defaults = dict(
        kind=kind,
        win=40.0,
        overlap=0.75,
        num_windows=4,
        rate=3_000.0,
        record_size=100,
        num_reducers=4,
        cluster_config=small_test_config(),
        seed=23,
        batches_per_pane=2,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


@pytest.mark.parametrize("overlap", [0.75, 0.5, 0.25])
def test_aggregation_equivalence_across_overlaps(overlap):
    cfg = config(overlap=overlap)
    workload = build_workload(cfg)
    hadoop = run_hadoop_series(cfg, workload=workload)
    redoop = run_redoop_series(cfg, workload=workload)
    assert hadoop.output_digests == redoop.output_digests


@pytest.mark.slow
@pytest.mark.parametrize("overlap", [0.75, 0.5])
def test_join_equivalence_across_overlaps(overlap):
    cfg = config(kind="join", overlap=overlap, rate=2_000.0, join_keys=7)
    workload = build_workload(cfg)
    hadoop = run_hadoop_series(cfg, workload=workload)
    redoop = run_redoop_series(cfg, workload=workload)
    assert hadoop.output_digests == redoop.output_digests


def test_ffg_aggregation_equivalence():
    cfg = config(kind="ffg-aggregation", join_keys=9)
    workload = build_workload(cfg)
    hadoop = run_hadoop_series(cfg, workload=workload)
    redoop = run_redoop_series(cfg, workload=workload)
    assert hadoop.output_digests == redoop.output_digests


def test_adaptive_mode_preserves_answers():
    """Proactive sub-pane processing must not change any output."""
    cfg = config(
        num_windows=6,
        spiked_recurrences=frozenset({2, 3, 5}),
    )
    workload = build_workload(cfg)
    plain = run_redoop_series(cfg, workload=workload)
    adaptive = run_redoop_series(cfg, adaptive=True, workload=workload)
    hadoop = run_hadoop_series(cfg, workload=workload)
    assert plain.output_digests == adaptive.output_digests
    assert plain.output_digests == hadoop.output_digests


def test_cache_failures_preserve_answers():
    cfg = config(num_windows=5)
    workload = build_workload(cfg)
    clean = run_redoop_series(cfg, workload=workload)
    faulty = run_redoop_series(
        cfg,
        workload=workload,
        cache_failure_injector=FaultInjector(cache_loss_fraction=0.5, seed=3),
    )
    assert clean.output_digests == faulty.output_digests


def test_no_caching_preserves_answers():
    cfg = config()
    workload = build_workload(cfg)
    cached = run_redoop_series(cfg, workload=workload)
    uncached = run_redoop_series(
        cfg, workload=workload, enable_caching=False
    )
    assert cached.output_digests == uncached.output_digests


def test_headerless_panes_preserve_answers():
    cfg = config(rate=500.0)  # low rate -> shared pane files
    workload = build_workload(cfg)
    with_headers = run_redoop_series(cfg, workload=workload)
    without = run_redoop_series(
        cfg, workload=workload, use_pane_headers=False
    )
    assert with_headers.output_digests == without.output_digests


def test_input_only_cache_preserves_answers():
    cfg = config()
    workload = build_workload(cfg)
    both = run_redoop_series(cfg, workload=workload)
    input_only = run_redoop_series(
        cfg, workload=workload, enable_output_cache=False
    )
    assert both.output_digests == input_only.output_digests
