"""Property-based integration invariants of the full Redoop stack."""

from __future__ import annotations

from collections import Counter as PyCounter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RecurringQuery, RedoopRuntime, WindowSpec, merging_finalizer
from repro.hadoop import BatchFile, Cluster, Record, small_test_config

from ..conftest import wordcount_job

WIN, SLIDE = 40.0, 10.0
RATE = 500_000.0


def _records(seed: int, horizon: float, n: int):
    import random

    rng = random.Random(seed)
    return sorted(
        (
            Record(
                ts=rng.uniform(0.0, horizon - 1e-6),
                value=f"w{rng.randrange(6)}",
                size=100,
            )
            for _ in range(n)
        ),
        key=lambda r: r.ts,
    )


def _run(records, horizon: float, batch_bounds):
    """Run 3 recurrences feeding `records` split at `batch_bounds`."""
    cluster = Cluster(small_test_config(), seed=3)
    runtime = RedoopRuntime(cluster)
    query = RecurringQuery(
        name="wc",
        job=wordcount_job(num_reducers=4, name="wc"),
        windows={"S1": WindowSpec(win=WIN, slide=SLIDE)},
        finalize=merging_finalizer(sum),
    )
    runtime.register_query(query, {"S1": RATE})
    bounds = [0.0] + sorted(batch_bounds) + [horizon]
    for i, (t0, t1) in enumerate(zip(bounds, bounds[1:])):
        if t1 - t0 < 1e-9:
            continue
        chunk = [r for r in records if t0 <= r.ts < t1]
        runtime.ingest(
            BatchFile(path=f"/b/{i}", source="S1", t_start=t0, t_end=t1),
            chunk,
        )
    return [tuple(sorted(map(repr, runtime.run_recurrence("wc", k).output)))
            for k in (1, 2, 3)]


class TestBatchGranularityInvariance:
    """Window answers must not depend on how data was batched."""

    @given(
        cuts=st.lists(
            st.floats(1.0, 59.0), min_size=0, max_size=6, unique=True
        ),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=10, deadline=None)
    def test_same_output_any_batching(self, cuts, seed):
        horizon = 60.0
        records = _records(seed, horizon, n=80)
        # Reference: one batch per slide.
        reference = _run(records, horizon, [10.0, 20.0, 30.0, 40.0, 50.0])
        # Arbitrary batching, as long as it reaches the horizon.
        arbitrary = _run(records, horizon, cuts)
        assert reference == arbitrary


class TestGroundTruth:
    @given(seed=st.integers(0, 10))
    @settings(max_examples=8, deadline=None)
    def test_window_answers_match_brute_force(self, seed):
        horizon = 60.0
        records = _records(seed, horizon, n=60)
        outputs = _run(records, horizon, [10.0, 20.0, 30.0, 40.0, 50.0])
        spec = WindowSpec(win=WIN, slide=SLIDE)
        for k, digest in enumerate(outputs, start=1):
            start, end = spec.window_bounds(k)
            expected = PyCounter(
                r.value for r in records if start <= r.ts < end
            )
            got = dict(eval(pair) for pair in digest)  # reprs of (k, v)
            assert got == dict(expected)
