"""Integration: the paper's performance *shapes* hold on small workloads.

Downscaled versions of the Figs. 6-9 claims, kept fast enough for CI.
Absolute numbers are virtual seconds and differ from the paper's
testbed; the assertions target orderings and rough factors only.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.bench.harness import (
    ExperimentConfig,
    build_workload,
    run_hadoop_series,
    run_redoop_series,
)
from repro.hadoop.config import ClusterConfig
from repro.hadoop.faults import FaultInjector
from repro.workloads.batches import paper_spike_windows

#: A mid-size cluster: big enough that window jobs take multiple task
#: waves (the regime where caching pays), small enough for fast tests.
CLUSTER = ClusterConfig(num_nodes=8, default_num_reducers=16)


def config(kind="aggregation", overlap=0.9, **kwargs):
    defaults = dict(
        kind=kind,
        win=3600.0,
        overlap=overlap,
        num_windows=4,
        rate=8_000_000.0,
        record_size=1_000_000,
        num_reducers=16,
        cluster_config=CLUSTER,
        seed=5,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def compare(cfg, **redoop_kwargs):
    workload = build_workload(cfg)
    hadoop = run_hadoop_series(cfg, workload=workload)
    redoop = run_redoop_series(cfg, workload=workload, **redoop_kwargs)
    return hadoop, redoop


class TestFig6Shape:
    def test_first_window_roughly_ties(self):
        hadoop, redoop = compare(config())
        h1 = hadoop.windows[0].response_time
        r1 = redoop.windows[0].response_time
        assert r1 == pytest.approx(h1, rel=0.25)

    def test_high_overlap_big_speedup(self):
        hadoop, redoop = compare(config(overlap=0.9))
        assert redoop.speedup_vs(hadoop, skip_first=True) > 3.0

    def test_speedup_grows_with_overlap(self):
        speedups = {}
        for overlap in (0.9, 0.5, 0.1):
            hadoop, redoop = compare(config(overlap=overlap))
            speedups[overlap] = redoop.speedup_vs(hadoop, skip_first=True)
        assert speedups[0.9] > speedups[0.5] > speedups[0.1] * 0.999
        assert speedups[0.1] == pytest.approx(1.0, abs=0.35)

    def test_phase_split_smaller_for_redoop(self):
        hadoop, redoop = compare(config(overlap=0.9))
        assert redoop.total_phases().shuffle < hadoop.total_phases().shuffle
        assert redoop.total_phases().reduce < hadoop.total_phases().reduce


class TestFig7Shape:
    def test_join_speedup_at_high_overlap(self):
        cfg = config(kind="join", overlap=0.9, rate=4_000_000.0)
        hadoop, redoop = compare(cfg)
        assert redoop.speedup_vs(hadoop, skip_first=True) > 2.5
        assert hadoop.output_digests == redoop.output_digests


class TestFig8Shape:
    def test_adaptive_beats_nonadaptive_under_spikes(self):
        cfg = config(
            overlap=0.25,
            num_windows=8,
            spiked_recurrences=frozenset(paper_spike_windows(8)),
        )
        workload = build_workload(cfg)
        hadoop = run_hadoop_series(cfg, workload=workload)
        plain = run_redoop_series(cfg, workload=workload)
        adaptive = run_redoop_series(cfg, adaptive=True, workload=workload)
        # After the detector warms up (first spike observed), proactive
        # windows must be far faster than both alternatives.
        tail = slice(3, None)
        assert (
            sum(adaptive.response_times()[tail])
            < 0.7 * sum(plain.response_times()[tail])
        )
        assert (
            sum(adaptive.response_times()[tail])
            < 0.7 * sum(hadoop.response_times()[tail])
        )


class TestFig9Shape:
    def test_redoop_with_failures_still_beats_hadoop(self):
        cfg = config(kind="ffg-aggregation", overlap=0.5, num_windows=6)
        workload = build_workload(cfg)
        hadoop = run_hadoop_series(cfg, workload=workload)
        clean = run_redoop_series(cfg, workload=workload)
        faulty = run_redoop_series(
            cfg,
            workload=workload,
            cache_failure_injector=FaultInjector(
                cache_loss_fraction=0.5, seed=2
            ),
        )
        assert clean.total_response() < faulty.total_response()
        assert faulty.total_response() < hadoop.total_response()
