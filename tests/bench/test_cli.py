"""Tests for the command-line experiment runner."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_experiments_have_subcommands(self):
        parser = build_parser()
        for command in ("list", "fig6", "fig7", "fig8", "fig9", "headline",
                        "ablations"):
            args = parser.parse_args(
                [command] if command == "list" else [command]
            )
            assert args.command == command

    def test_scale_and_windows_parsed(self):
        args = build_parser().parse_args(["fig6", "--scale", "0.2",
                                          "--windows", "4"])
        assert args.scale == 0.2
        assert args.windows == 4

    def test_overlaps_parsed(self):
        args = build_parser().parse_args(["fig8", "--overlaps", "0.1", "0.9"])
        assert args.overlaps == [0.1, 0.9]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig6", "fig7", "fig8", "fig9", "headline", "ablations"):
            assert name in out

    def test_fig6_tiny_run(self, capsys):
        rc = main(["fig6", "--scale", "0.05", "--windows", "2",
                   "--overlaps", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overlap = 0.5" in out
        assert "redoop vs hadoop" in out

    def test_fig9_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig9.csv"
        rc = main(["fig9", "--scale", "0.05", "--windows", "2",
                   "--csv", str(csv_path)])
        assert rc == 0
        with open(csv_path) as fh:
            rows = list(csv.DictReader(fh))
        # 4 systems x 2 windows.
        assert len(rows) == 8
        assert {r["system"] for r in rows} == {
            "hadoop", "redoop", "redoop(f)", "hadoop(f)"
        }
        assert all(float(r["response_time"]) > 0 for r in rows)

    @pytest.mark.slow
    def test_headline_tiny_run(self, capsys):
        rc = main(["headline", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aggregation" in out and "join" in out
