"""Unit tests for the experiment harness."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ExperimentConfig,
    SeriesResult,
    WindowMetrics,
    build_workload,
    run_hadoop_series,
    run_redoop_series,
)
from repro.hadoop.config import small_test_config
from repro.hadoop.counters import PhaseTimes


def tiny_config(kind="aggregation", **kwargs):
    defaults = dict(
        kind=kind,
        win=40.0,
        overlap=0.75,  # slide = 10
        num_windows=3,
        rate=2_000.0,
        record_size=100,
        num_reducers=4,
        cluster_config=small_test_config(),
        seed=11,
        batches_per_pane=2,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


class TestExperimentConfig:
    def test_slide_from_overlap(self):
        assert tiny_config(overlap=0.75).slide == 10.0
        assert tiny_config(overlap=0.0).slide == 40.0

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            tiny_config(kind="nonsense")

    def test_invalid_overlap_rejected(self):
        with pytest.raises(ValueError):
            tiny_config(overlap=1.0)
        with pytest.raises(ValueError):
            tiny_config(overlap=-0.1)

    def test_horizon_covers_all_windows(self):
        config = tiny_config(num_windows=3)
        assert config.horizon == config.spec.execution_time(3)

    def test_sources_per_kind(self):
        assert tiny_config("aggregation").sources == ("wcc",)
        assert tiny_config("join").sources == ("events", "positions")
        assert tiny_config("ffg-aggregation").sources == ("positions",)

    def test_build_query_kinds(self):
        assert tiny_config("aggregation").build_query().num_sources == 1
        assert tiny_config("join").build_query().num_sources == 2


class TestBuildWorkload:
    def test_batches_cover_horizon(self):
        config = tiny_config()
        workload = build_workload(config)
        batches = workload["wcc"]
        assert batches[0][0].t_start == 0.0
        assert batches[-1][0].t_end == pytest.approx(config.horizon)

    def test_batch_granularity(self):
        config = tiny_config(batches_per_pane=2)
        workload = build_workload(config)
        batch = workload["wcc"][0][0]
        assert batch.t_end - batch.t_start == pytest.approx(
            config.spec.pane_seconds / 2
        )

    def test_join_workload_has_two_sources(self):
        workload = build_workload(tiny_config("join"))
        assert set(workload) == {"events", "positions"}

    def test_spiked_batches_larger(self):
        config = tiny_config(spiked_recurrences=frozenset({2}))
        workload = build_workload(config)
        spec = config.spec
        normal = spiked = 0
        for batch, records in workload["wcc"]:
            size = sum(r.size for r in records)
            if spec.execution_time(1) <= batch.t_start < spec.execution_time(2):
                spiked += size
            elif batch.t_end <= spec.execution_time(1):
                normal += size
        # Window 2's new slide of data is doubled; compare per-second.
        assert spiked / config.slide == pytest.approx(
            2 * normal / config.win, rel=0.2
        )


class TestSeriesRunners:
    def test_hadoop_and_redoop_outputs_match(self):
        config = tiny_config()
        workload = build_workload(config)
        hadoop = run_hadoop_series(config, workload=workload)
        redoop = run_redoop_series(config, workload=workload)
        assert hadoop.output_digests == redoop.output_digests
        assert len(hadoop.windows) == config.num_windows

    def test_metrics_populated(self):
        config = tiny_config()
        series = run_redoop_series(config)
        for i, w in enumerate(series.windows, start=1):
            assert w.recurrence == i
            assert w.response_time > 0
            assert w.finish_time > w.due_time

    def test_labels(self):
        config = tiny_config()
        assert run_redoop_series(config, label="x").label == "x"
        assert run_hadoop_series(config, label="y").label == "y"


class TestSeriesResult:
    def _series(self, times):
        return SeriesResult(
            label="s",
            windows=[
                WindowMetrics(
                    recurrence=i + 1,
                    due_time=0.0,
                    finish_time=t,
                    response_time=t,
                    phases=PhaseTimes(map=1.0, shuffle=2.0, reduce=3.0),
                    output_pairs=0,
                )
                for i, t in enumerate(times)
            ],
        )

    def test_avg_response(self):
        s = self._series([10.0, 2.0, 4.0])
        assert s.avg_response() == pytest.approx(16.0 / 3)
        assert s.avg_response(skip_first=True) == pytest.approx(3.0)

    def test_total_response(self):
        assert self._series([1.0, 2.0]).total_response() == 3.0

    def test_total_phases(self):
        total = self._series([1.0, 2.0]).total_phases()
        assert total.shuffle == 4.0
        assert total.reduce == 6.0

    def test_speedup_vs(self):
        fast = self._series([1.0, 1.0])
        slow = self._series([3.0, 5.0])
        assert fast.speedup_vs(slow) == pytest.approx(4.0)
