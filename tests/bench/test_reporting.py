"""Unit tests for paper-style reporting."""

from __future__ import annotations

import pytest

from repro.bench.harness import SeriesResult, WindowMetrics
from repro.bench.reporting import (
    format_cumulative_table,
    format_phase_split,
    format_response_table,
    format_speedup_summary,
)
from repro.hadoop.counters import PhaseTimes


def series(label, times):
    return SeriesResult(
        label=label,
        windows=[
            WindowMetrics(
                recurrence=i + 1,
                due_time=0.0,
                finish_time=t,
                response_time=t,
                phases=PhaseTimes(map=0.0, shuffle=t / 2, reduce=t / 4),
                output_pairs=1,
            )
            for i, t in enumerate(times)
        ],
    )


@pytest.fixture
def two_systems():
    return {
        "hadoop": series("hadoop", [10.0, 10.0]),
        "redoop": series("redoop", [10.0, 2.0]),
    }


class TestResponseTable:
    def test_contains_all_windows_and_labels(self, two_systems):
        text = format_response_table(two_systems, title="T")
        assert text.startswith("T")
        assert "hadoop" in text and "redoop" in text
        lines = text.splitlines()
        assert len([l for l in lines if l.strip().startswith(("1", "2"))]) == 2

    def test_average_row(self, two_systems):
        text = format_response_table(two_systems)
        avg_line = [l for l in text.splitlines() if "avg" in l][0]
        assert "10.0" in avg_line  # hadoop avg
        assert "6.0" in avg_line  # redoop avg


class TestPhaseSplit:
    def test_totals(self, two_systems):
        text = format_phase_split(two_systems)
        assert "shuffle" in text and "reduce" in text
        redoop_line = [l for l in text.splitlines() if "redoop" in l][0]
        assert "6.0" in redoop_line  # shuffle sum = 5 + 1
        assert "3.0" in redoop_line  # reduce sum = 2.5 + 0.5


class TestCumulativeTable:
    def test_running_sums(self, two_systems):
        text = format_cumulative_table(two_systems)
        last = text.splitlines()[-1]
        assert "20.0" in last  # hadoop cumulative
        assert "12.0" in last  # redoop cumulative


class TestSpeedupSummary:
    def test_speedup_computed(self, two_systems):
        text = format_speedup_summary(two_systems, skip_first=True)
        assert "redoop vs hadoop" in text
        assert "5.00x" in text  # 10 / 2 on window 2

    def test_baseline_excluded(self, two_systems):
        text = format_speedup_summary(two_systems)
        assert "hadoop vs hadoop" not in text
