"""Tests for ASCII plotting helpers."""

from __future__ import annotations

import pytest

from repro.bench.plots import bar_chart, plot_series, plot_speedups

from .test_reporting import series


class TestBarChart:
    def test_scales_to_peak(self):
        chart = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_values_printed(self):
        chart = bar_chart(["x"], [3.5], unit="s")
        assert "3.5s" in chart

    def test_labels_aligned(self):
        chart = bar_chart(["short", "a much longer label"], [1.0, 2.0])
        lines = chart.splitlines()
        assert lines[0].index("│") == lines[1].index("│")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_all_zero_values(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert "█" not in chart


class TestPlotSeries:
    def test_contains_all_systems_and_windows(self):
        s = {
            "hadoop": series("hadoop", [10.0, 10.0]),
            "redoop": series("redoop", [10.0, 2.0]),
        }
        text = plot_series(s, title="T")
        assert text.startswith("T")
        assert "[hadoop]" in text and "[redoop]" in text
        assert text.count("w1") == 2 and text.count("w2") == 2


class TestPlotSpeedups:
    def test_excludes_baseline(self):
        s = {
            "hadoop": series("hadoop", [10.0, 10.0]),
            "redoop": series("redoop", [10.0, 2.0]),
        }
        text = plot_speedups(s)
        assert "redoop" in text
        assert "5.0x" in text
        assert "hadoop │" not in text

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError):
            plot_speedups({"redoop": series("redoop", [1.0])}, baseline="nope")
