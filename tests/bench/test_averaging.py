"""Tests for multi-run averaging (the paper's 10-run methodology)."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ExperimentConfig,
    SeriesResult,
    WindowMetrics,
    average_series,
    run_averaged,
)
from repro.hadoop.config import small_test_config
from repro.hadoop.counters import PhaseTimes


def _series(times, label="s"):
    return SeriesResult(
        label=label,
        windows=[
            WindowMetrics(
                recurrence=i + 1,
                due_time=float(i),
                finish_time=float(i) + t,
                response_time=t,
                phases=PhaseTimes(map=t, shuffle=t / 2, reduce=t / 4),
                output_pairs=10,
            )
            for i, t in enumerate(times)
        ],
    )


class TestAverageSeries:
    def test_means_per_window(self):
        avg = average_series([_series([10.0, 20.0]), _series([30.0, 40.0])])
        assert avg.response_times() == [20.0, 30.0]
        assert avg.windows[0].phases.shuffle == pytest.approx(10.0)

    def test_single_run_identity(self):
        run = _series([5.0, 6.0])
        avg = average_series([run])
        assert avg.response_times() == run.response_times()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_series([])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            average_series([_series([1.0]), _series([1.0, 2.0])])


class TestRunAveraged:
    def test_runs_and_averages(self):
        config = ExperimentConfig(
            kind="aggregation",
            win=40.0,
            overlap=0.75,
            num_windows=2,
            rate=2_000.0,
            record_size=100,
            num_reducers=4,
            cluster_config=small_test_config(),
            seed=31,
        )
        averaged = run_averaged(config, num_runs=2)
        assert set(averaged) == {"hadoop", "redoop"}
        assert len(averaged["redoop"].windows) == 2
        assert all(w.response_time > 0 for w in averaged["redoop"].windows)

    def test_zero_runs_rejected(self):
        config = ExperimentConfig(
            kind="aggregation", cluster_config=small_test_config()
        )
        with pytest.raises(ValueError):
            run_averaged(config, num_runs=0)
