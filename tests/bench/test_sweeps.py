"""Unit smoke tests for the deployment sweeps (tiny scales)."""

from __future__ import annotations


from repro.bench.sweeps import (
    sweep_cluster_size,
    sweep_num_reducers,
    sweep_window_size,
)


class TestSweepClusterSize:
    def test_returns_speedup_per_size(self):
        results = sweep_cluster_size(
            node_counts=(4, 8), scale=0.03, num_windows=2
        )
        assert set(results) == {4, 8}
        assert all(s > 0 for s in results.values())


class TestSweepNumReducers:
    def test_returns_speedup_per_count(self):
        results = sweep_num_reducers(
            reducer_counts=(15, 60), scale=0.03, num_windows=2
        )
        assert set(results) == {15, 60}
        assert all(s > 0 for s in results.values())


class TestSweepWindowSize:
    def test_returns_speedup_per_window(self):
        results = sweep_window_size(
            window_hours=(0.5, 1.0), scale=0.03, num_windows=2
        )
        assert set(results) == {0.5, 1.0}
        assert all(s > 0 for s in results.values())
