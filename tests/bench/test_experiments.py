"""Smoke tests for the per-figure experiment functions (tiny scales)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    PAPER_OVERLAPS,
    ablation_cache_levels,
    aggregation_config,
    fig6_aggregation,
    fig8_adaptive,
    fig9_fault_tolerance,
    join_config,
)
from repro.hadoop.config import small_test_config

TINY = dict(scale=0.02, num_windows=2)


class TestConfigs:
    def test_aggregation_config_shape(self):
        config = aggregation_config(0.9, scale=0.5)
        assert config.kind == "aggregation"
        assert config.overlap == 0.9
        assert config.rate == pytest.approx(15_000_000.0)

    def test_join_config_shape(self):
        config = join_config(0.5, scale=1.0)
        assert config.kind == "join"
        assert config.record_size == 2_000_000

    def test_paper_overlaps(self):
        assert PAPER_OVERLAPS == (0.9, 0.5, 0.1)


class TestFigureFunctions:
    def test_fig6_returns_series_per_overlap(self):
        results = fig6_aggregation(
            overlaps=(0.5,), cluster_config=small_test_config(8), **TINY
        )
        assert set(results) == {0.5}
        assert set(results[0.5]) == {"hadoop", "redoop"}
        assert len(results[0.5]["redoop"].windows) == 2

    def test_fig6_outputs_verified_internally(self):
        # _compare raises if the two systems diverge; reaching here is
        # the assertion.
        fig6_aggregation(
            overlaps=(0.75,), cluster_config=small_test_config(4), **TINY
        )

    def test_fig8_three_systems(self):
        results = fig8_adaptive(
            overlaps=(0.5,), cluster_config=small_test_config(8), **TINY
        )
        assert set(results[0.5]) == {"hadoop", "redoop", "adaptive"}

    def test_fig9_four_series(self):
        results = fig9_fault_tolerance(
            scale=0.02, num_windows=2, cluster_config=small_test_config(8)
        )
        assert set(results) == {"hadoop", "redoop", "redoop(f)", "hadoop(f)"}
        assert results["redoop(f)"].total_response() >= results[
            "redoop"
        ].total_response()

    def test_ablation_cache_levels_ordering(self):
        results = ablation_cache_levels(scale=0.02)
        assert set(results) == {"both-caches", "input-only", "no-caching"}
        assert (
            results["both-caches"].avg_response(skip_first=True)
            <= results["no-caching"].avg_response(skip_first=True)
        )
