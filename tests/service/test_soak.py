"""Deterministic multi-tenant soak: churn plus kill/restore equivalence.

The acceptance bar for the service subsystem: drive several tenants
through many recurrences with mid-run churn, kill the server at an
arbitrary recurrence boundary, restore from the latest checkpoint, and
require byte-identical per-window output digests versus the
uninterrupted run.
"""

from __future__ import annotations

import pytest

from repro.bench import ServiceScenario, build_server, drive_scenario
from repro.bench.service import churn_plan
from repro.service import QueryServer, latest_checkpoint


def run_uninterrupted(scenario):
    server = build_server(scenario)
    return drive_scenario(scenario, server)


def run_killed_and_restored(scenario, kill_after, tmp_path):
    ckpt_dir = tmp_path / f"ck-{kill_after}"
    server = build_server(scenario, checkpoint_dir=ckpt_dir, checkpoint_every=1)
    drive_scenario(scenario, server, stop_after_recurrences=kill_after)
    del server  # the "kill": nothing survives but the checkpoint files

    path = latest_checkpoint(ckpt_dir)
    assert path is not None
    restored = QueryServer.restore(path)
    return drive_scenario(scenario, restored)


class TestSmokeSoak:
    SCENARIO = ServiceScenario(tenants=3, recurrences=8, rate=50_000.0)

    def test_churn_plan_is_nontrivial(self):
        kinds = [a.kind for a in churn_plan(self.SCENARIO)]
        assert kinds == ["pause", "deregister", "submit", "resume"]

    def test_all_tenants_produce_output(self):
        run = run_uninterrupted(self.SCENARIO)
        assert set(run.digests) == {"t00", "t01", "t01r", "t02"}
        assert run.recurrences_fired >= self.SCENARIO.recurrences
        assert run.counters["service.queries_submitted"] == 4

    def test_kill_restore_matches_uninterrupted(self, tmp_path):
        baseline = run_uninterrupted(self.SCENARIO)
        rerun = run_killed_and_restored(self.SCENARIO, 5, tmp_path)
        assert rerun.digests == baseline.digests
        assert rerun.counters["service.restores"] == 1

    def test_repeat_runs_are_deterministic(self):
        assert run_uninterrupted(self.SCENARIO).digests == run_uninterrupted(
            self.SCENARIO
        ).digests


@pytest.mark.slow
class TestFullSoak:
    """ISSUE acceptance: >=3 tenants, >=20 recurrences, churn mid-run,
    kill at arbitrary recurrence boundaries."""

# 3 tenants, churn on; one extra slide so the shortest-window tenant
    # still sees >=20 of its own recurrences (its first is not due until
    # one full window after t=0).
    SCENARIO = ServiceScenario(recurrences=21)

    def test_kill_at_arbitrary_boundaries(self, tmp_path):
        baseline = run_uninterrupted(self.SCENARIO)
        assert len(baseline.digests["t00"]) >= 20
        for kill_after in (3, 11, 23, 37):
            rerun = run_killed_and_restored(self.SCENARIO, kill_after, tmp_path)
            assert rerun.digests == baseline.digests, f"diverged at kill={kill_after}"
