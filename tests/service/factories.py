"""Importable query factories for service tests.

Query specs name their factory as ``module:callable``; checkpoint
restore re-imports it, so test factories must live in a real module
(not inside a test function).
"""

from __future__ import annotations

from repro.core import RecurringQuery, WindowSpec, merging_finalizer
from repro.hadoop import MapReduceJob, Record


def _mapper(record: Record):
    yield record.value, 1


def _reducer(key, values):
    yield key, sum(values)


def wordcount_query(
    win: float,
    slide: float,
    *,
    name: str,
    source: str = "S1",
    job_name: str = None,
    num_reducers: int = 4,
) -> RecurringQuery:
    """A deterministic word-count recurring query over one source."""
    job = MapReduceJob(
        name=job_name if job_name is not None else name,
        mapper=_mapper,
        reducer=_reducer,
        combiner=_reducer,
        num_reducers=num_reducers,
    )
    return RecurringQuery(
        name=name,
        job=job,
        windows={source: WindowSpec(win=win, slide=slide)},
        finalize=merging_finalizer(sum),
    )
