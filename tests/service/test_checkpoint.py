"""Checkpoint framing, validation errors, and spec/factory round-trips."""

from __future__ import annotations

import json

import pytest

from repro.core import RecurringQuery
from repro.service import (
    CheckpointError,
    QuerySpec,
    build_query,
    load_checkpoint,
    resolve_factory,
    save_checkpoint,
)
from repro.service.checkpoint import MAGIC, SCHEMA_VERSION

FACTORY = "tests.service.factories:wordcount_query"


def make_spec(name="q1", win=40.0, slide=10.0, **extra):
    kwargs = {"win": win, "slide": slide, "name": name}
    kwargs.update(extra)
    return QuerySpec(name=name, factory=FACTORY, kwargs=kwargs, rates={"S1": 1000.0})


class TestSpecs:
    def test_factory_must_have_colon(self):
        with pytest.raises(ValueError, match="module:callable"):
            QuerySpec(name="q", factory="not.a.path")

    def test_resolve_unknown_module(self):
        with pytest.raises(ValueError, match="cannot import"):
            resolve_factory("no.such.module:thing")

    def test_resolve_unknown_attribute(self):
        with pytest.raises(ValueError, match="no attribute"):
            resolve_factory("tests.service.factories:nope")

    def test_build_query_runs_factory(self):
        query = build_query(make_spec())
        assert isinstance(query, RecurringQuery)
        assert query.name == "q1"
        assert query.spec("S1").win == 40.0

    def test_build_query_name_mismatch_rejected(self):
        spec = QuerySpec(
            name="alias",
            factory=FACTORY,
            kwargs={"win": 40.0, "slide": 10.0, "name": "other"},
        )
        with pytest.raises(ValueError, match="must match"):
            build_query(spec)


class TestRoundTrip:
    def test_graph_round_trips_with_rebuilt_queries(self, tmp_path):
        spec_a, spec_b = make_spec("qa"), make_spec("qb", job_name="shared")
        qa, qb = build_query(spec_a), build_query(spec_b)
        graph = {"queries": {"qa": qa, "qb": qb}, "cursor": 17}
        path = save_checkpoint(
            tmp_path / "ck.bin",
            specs={"qa": spec_a, "qb": spec_b},
            queries={"qa": qa, "qb": qb},
            graph=graph,
        )
        restored = load_checkpoint(path)
        assert restored["cursor"] == 17
        rqa = restored["queries"]["qa"]
        # The query was rebuilt by the factory, not unpickled.
        assert rqa is not qa
        assert rqa.name == "qa"
        assert rqa.spec("S1").win == qa.spec("S1").win
        # Its map function is live code again.
        from repro.hadoop import Record

        assert list(rqa.job.mapper(Record(ts=0.0, value="x"))) == [("x", 1)]

    def test_shared_job_objects_stay_shared(self, tmp_path):
        spec_a = make_spec("qa", job_name="wc-shared")
        spec_b = make_spec("qb", win=20.0, job_name="wc-shared")
        qa, qb = build_query(spec_a), build_query(spec_b)
        graph = [qa, qb]
        path = save_checkpoint(
            tmp_path / "ck.bin",
            specs={"qa": spec_a, "qb": spec_b},
            queries={"qa": qa, "qb": qb},
            graph=graph,
        )
        ra, rb = load_checkpoint(path)
        # Restore canonicalises jobs by name: one shared object.
        assert ra.job is rb.job


class TestValidation:
    def _write(self, tmp_path, mutate):
        spec = make_spec()
        query = build_query(spec)
        path = save_checkpoint(
            tmp_path / "ck.bin",
            specs={"q1": spec},
            queries={"q1": query},
            graph={"q": query},
        )
        data = bytearray(path.read_bytes())
        mutate(data)
        path.write_bytes(bytes(data))
        return path

    def test_bad_magic(self, tmp_path):
        path = self._write(tmp_path, lambda d: d.__setitem__(0, ord("X")))
        with pytest.raises(CheckpointError, match="not a service checkpoint"):
            load_checkpoint(path)

    def test_truncation(self, tmp_path):
        path = self._write(tmp_path, lambda d: d.__delitem__(slice(-40, None)))
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_corruption_fails_digest(self, tmp_path):
        def flip_last(d):
            d[-1] ^= 0xFF

        path = self._write(tmp_path, flip_last)
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)

    def test_schema_version_mismatch(self, tmp_path):
        path = self._write(tmp_path, lambda d: None)
        data = path.read_bytes()
        rest = data[len(MAGIC):]
        newline = rest.find(b"\n")
        header = json.loads(rest[:newline])
        assert header["schema_version"] == SCHEMA_VERSION
        header["schema_version"] = SCHEMA_VERSION + 99
        path.write_bytes(
            MAGIC
            + json.dumps(header, sort_keys=True).encode()
            + b"\n"
            + rest[newline + 1:]
        )
        with pytest.raises(CheckpointError, match="schema version"):
            load_checkpoint(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "absent.bin")

    def test_unsnapshottable_graph_rejected(self, tmp_path):
        spec = make_spec()
        query = build_query(spec)
        with pytest.raises(CheckpointError, match="not snapshottable"):
            save_checkpoint(
                tmp_path / "ck.bin",
                specs={"q1": spec},
                queries={"q1": query},
                graph={"bad": lambda: None},  # a stray closure
            )


class TestFaultStateRoundTrip:
    def test_injector_rng_survives_checkpoint(self, tmp_path):
        """A mid-stream FaultInjector resumes its RNG exactly.

        Chaos runs checkpoint alongside the tenant graph; on restore the
        injector must continue the identical random sequence, or a
        replayed schedule would diverge from the original run.
        """
        from repro.hadoop import FaultInjector

        spec = make_spec()
        query = build_query(spec)
        injector = FaultInjector(
            task_failure_prob=0.1, cache_loss_fraction=0.5, seed=13
        )
        injector.doom("/w4/")
        # Warm the RNG so the saved state is mid-stream, not initial.
        for i in range(5):
            injector.attempt_duration(f"q1/map/p{i}#0", 10.0)
        caches = [f"cache-{i}" for i in range(12)]
        path = save_checkpoint(
            tmp_path / "ck.bin",
            specs={"q1": spec},
            queries={"q1": query},
            graph={"queries": {"q1": query}, "faults": injector},
        )
        restored = load_checkpoint(path)["faults"]
        assert restored is not injector
        assert restored.doomed() == ["/w4/"]
        assert restored.task_failure_prob == 0.1
        # Identical continuation on both sides.
        for i in range(5, 10):
            key = f"q1/map/p{i}#0"
            assert restored.attempt_duration(key, 10.0) == (
                injector.attempt_duration(key, 10.0)
            )
        assert restored.pick_cache_victims(caches) == (
            injector.pick_cache_victims(caches)
        )

    def test_chaos_schedule_round_trips_in_graph(self, tmp_path):
        from repro.chaos import ChaosEvent, ChaosSchedule

        sched = ChaosSchedule(
            seed=5,
            events=(
                ChaosEvent(at=45.0, kind="cache-loss", fraction=0.4),
                ChaosEvent(at=60.0, kind="task-exhaust", doom="/w3/"),
            ),
        )
        spec = make_spec()
        query = build_query(spec)
        path = save_checkpoint(
            tmp_path / "ck.bin",
            specs={"q1": spec},
            queries={"q1": query},
            graph={"queries": {"q1": query}, "schedule": sched, "next": 1},
        )
        restored = load_checkpoint(path)
        assert restored["schedule"] == sched
        assert restored["next"] == 1
