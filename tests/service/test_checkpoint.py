"""Checkpoint framing, validation errors, and spec/factory round-trips."""

from __future__ import annotations

import json

import pytest

from repro.core import RecurringQuery
from repro.service import (
    CheckpointError,
    QuerySpec,
    build_query,
    load_checkpoint,
    resolve_factory,
    save_checkpoint,
)
from repro.service.checkpoint import MAGIC, SCHEMA_VERSION

FACTORY = "tests.service.factories:wordcount_query"


def make_spec(name="q1", win=40.0, slide=10.0, **extra):
    kwargs = {"win": win, "slide": slide, "name": name}
    kwargs.update(extra)
    return QuerySpec(name=name, factory=FACTORY, kwargs=kwargs, rates={"S1": 1000.0})


class TestSpecs:
    def test_factory_must_have_colon(self):
        with pytest.raises(ValueError, match="module:callable"):
            QuerySpec(name="q", factory="not.a.path")

    def test_resolve_unknown_module(self):
        with pytest.raises(ValueError, match="cannot import"):
            resolve_factory("no.such.module:thing")

    def test_resolve_unknown_attribute(self):
        with pytest.raises(ValueError, match="no attribute"):
            resolve_factory("tests.service.factories:nope")

    def test_build_query_runs_factory(self):
        query = build_query(make_spec())
        assert isinstance(query, RecurringQuery)
        assert query.name == "q1"
        assert query.spec("S1").win == 40.0

    def test_build_query_name_mismatch_rejected(self):
        spec = QuerySpec(
            name="alias",
            factory=FACTORY,
            kwargs={"win": 40.0, "slide": 10.0, "name": "other"},
        )
        with pytest.raises(ValueError, match="must match"):
            build_query(spec)


class TestRoundTrip:
    def test_graph_round_trips_with_rebuilt_queries(self, tmp_path):
        spec_a, spec_b = make_spec("qa"), make_spec("qb", job_name="shared")
        qa, qb = build_query(spec_a), build_query(spec_b)
        graph = {"queries": {"qa": qa, "qb": qb}, "cursor": 17}
        path = save_checkpoint(
            tmp_path / "ck.bin",
            specs={"qa": spec_a, "qb": spec_b},
            queries={"qa": qa, "qb": qb},
            graph=graph,
        )
        restored = load_checkpoint(path)
        assert restored["cursor"] == 17
        rqa = restored["queries"]["qa"]
        # The query was rebuilt by the factory, not unpickled.
        assert rqa is not qa
        assert rqa.name == "qa"
        assert rqa.spec("S1").win == qa.spec("S1").win
        # Its map function is live code again.
        from repro.hadoop import Record

        assert list(rqa.job.mapper(Record(ts=0.0, value="x"))) == [("x", 1)]

    def test_shared_job_objects_stay_shared(self, tmp_path):
        spec_a = make_spec("qa", job_name="wc-shared")
        spec_b = make_spec("qb", win=20.0, job_name="wc-shared")
        qa, qb = build_query(spec_a), build_query(spec_b)
        graph = [qa, qb]
        path = save_checkpoint(
            tmp_path / "ck.bin",
            specs={"qa": spec_a, "qb": spec_b},
            queries={"qa": qa, "qb": qb},
            graph=graph,
        )
        ra, rb = load_checkpoint(path)
        # Restore canonicalises jobs by name: one shared object.
        assert ra.job is rb.job


class TestValidation:
    def _write(self, tmp_path, mutate):
        spec = make_spec()
        query = build_query(spec)
        path = save_checkpoint(
            tmp_path / "ck.bin",
            specs={"q1": spec},
            queries={"q1": query},
            graph={"q": query},
        )
        data = bytearray(path.read_bytes())
        mutate(data)
        path.write_bytes(bytes(data))
        return path

    def test_bad_magic(self, tmp_path):
        path = self._write(tmp_path, lambda d: d.__setitem__(0, ord("X")))
        with pytest.raises(CheckpointError, match="not a service checkpoint"):
            load_checkpoint(path)

    def test_truncation(self, tmp_path):
        path = self._write(tmp_path, lambda d: d.__delitem__(slice(-40, None)))
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_corruption_fails_digest(self, tmp_path):
        def flip_last(d):
            d[-1] ^= 0xFF

        path = self._write(tmp_path, flip_last)
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)

    def test_schema_version_mismatch(self, tmp_path):
        path = self._write(tmp_path, lambda d: None)
        data = path.read_bytes()
        rest = data[len(MAGIC):]
        newline = rest.find(b"\n")
        header = json.loads(rest[:newline])
        assert header["schema_version"] == SCHEMA_VERSION
        header["schema_version"] = SCHEMA_VERSION + 99
        path.write_bytes(
            MAGIC
            + json.dumps(header, sort_keys=True).encode()
            + b"\n"
            + rest[newline + 1:]
        )
        with pytest.raises(CheckpointError, match="schema version"):
            load_checkpoint(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "absent.bin")

    def test_unsnapshottable_graph_rejected(self, tmp_path):
        spec = make_spec()
        query = build_query(spec)
        with pytest.raises(CheckpointError, match="not snapshottable"):
            save_checkpoint(
                tmp_path / "ck.bin",
                specs={"q1": spec},
                queries={"q1": query},
                graph={"bad": lambda: None},  # a stray closure
            )
