"""The long-running server on a supervised process backend under
real worker faults.

Referenced by ``repro.service.server``'s fault-tolerance notes: a
crashed or hung pool worker mid-batch is absorbed by the supervision
ladder (invisible to tenants), a *terminal* pool failure degrades only
the affected window while the event loop keeps serving, and supervisor
state never rides a checkpoint — a restored server starts with a
clean, healthy pool.
"""

from __future__ import annotations

import random

from repro.core import RedoopRuntime
from repro.exec import ProcessPoolBackend
from repro.hadoop import BatchFile, Cluster, Record, small_test_config
from repro.service import ACCEPTED, QuerySpec, QueryServer

FACTORY = "tests.service.factories:wordcount_query"
RATE = 500_000.0


def spec_for(name="q1", win=40.0, slide=10.0):
    kwargs = {"win": win, "slide": slide, "name": name}
    return QuerySpec(
        name=name, factory=FACTORY, kwargs=kwargs, rates={"S1": RATE}
    )


def make_server(backend=None) -> QueryServer:
    cluster = Cluster(small_test_config(), seed=3)
    return QueryServer(RedoopRuntime(cluster, backend=backend))


def batch(i, t0, t1, n=20, key_space=5):
    rng = random.Random(i)
    dt = (t1 - t0) / n
    records = [
        Record(ts=t0 + j * dt, value=f"w{rng.randrange(key_space)}", size=100)
        for j in range(n)
    ]
    return (
        BatchFile(path=f"/b/S1/{i}", source="S1", t_start=t0, t_end=t1),
        records,
    )


def drive(server, upto, batch_seconds=10.0):
    i, t = 0, 0.0
    while t < upto - 1e-9:
        b, records = batch(i, t, t + batch_seconds)
        assert server.offer(b, records) == ACCEPTED
        server.run_until(t + batch_seconds)
        i += 1
        t += batch_seconds


def fingerprints(server):
    return [
        (r.query, r.recurrence, dict(r.output), r.degraded)
        for r in server.results
    ]


class TestRecoverableFaults:
    def test_crashed_worker_is_invisible_to_tenants(self):
        baseline = make_server()
        baseline.submit(spec_for())
        drive(baseline, 60.0)
        assert len(baseline.results) == 3

        backend = ProcessPoolBackend(
            workers=2, batch_deadline=5.0, backoff_base=0.01
        )
        server = make_server(backend)
        try:
            server.submit(spec_for())
            backend.inject_worker_faults("kill")
            drive(server, 60.0)
        finally:
            backend.close()
        # Identical outputs, recurrence for recurrence — the retry that
        # absorbed the crash never surfaced to the tenant.
        assert fingerprints(server) == fingerprints(baseline)
        assert server.counters.get("exec.worker_lost") >= 1
        assert server.counters.get("exec.pool_rebuilds") >= 1
        assert server.counters.get("faults.windows_degraded") == 0


class TestTerminalFaults:
    def test_dead_pool_degrades_one_window_and_the_loop_continues(self):
        baseline = make_server()
        baseline.submit(spec_for())
        drive(baseline, 70.0)

        backend = ProcessPoolBackend(
            workers=2,
            batch_deadline=5.0,
            max_task_retries=0,
            max_pool_rebuilds=0,
        )
        server = make_server(backend)
        try:
            server.submit(spec_for())
            backend.inject_worker_faults("kill")
            drive(server, 70.0)
            assert backend.pool_healthy()
        finally:
            backend.close()
        # The terminal WorkerFaultError funnelled into the degraded-
        # window path: exactly the affected window was abandoned, the
        # server kept firing, and every other recurrence matches the
        # serial baseline.
        degraded = [r.recurrence for r in server.results if r.degraded]
        assert len(degraded) >= 1
        assert server.counters.get("faults.windows_degraded") >= 1
        assert server.counters.get("task.exhausted") >= 1
        assert len(server.results) == len(baseline.results)
        clean = {
            r.recurrence: dict(r.output)
            for r in server.results
            if not r.degraded
        }
        expected = {
            r.recurrence: dict(r.output)
            for r in baseline.results
            if r.recurrence in clean
        }
        assert clean == expected
        assert clean  # the loop really did continue past the dead pool


class TestCheckpointHygiene:
    def test_restored_server_starts_with_a_clean_supervisor(self, tmp_path):
        backend = ProcessPoolBackend(workers=2, batch_deadline=5.0)
        server = make_server(backend)
        try:
            server.submit(spec_for())
            drive(server, 50.0)
            # Armed-but-unconsumed faults are transient chaos state;
            # they must not ride the checkpoint.
            backend.inject_worker_faults("kill", count=2)
            path = server.checkpoint(tmp_path / "ck.bin")
            dead = fingerprints(server)
        finally:
            backend.close()

        restored = QueryServer.restore(path)
        revived = restored.runtime.backend
        try:
            assert isinstance(revived, ProcessPoolBackend)
            assert revived.pending_worker_faults() == 0
            assert revived._pool is None  # pools are rebuilt lazily
            assert revived.pool_healthy()
            assert fingerprints(restored) == dead
            # And the restored server still executes on a fresh pool.
            b, records = batch(5, 50.0, 60.0)
            assert restored.offer(b, records) == ACCEPTED
            restored.run_until(60.0)
        finally:
            revived.close()
        assert len(restored.results) == len(dead) + 1
        assert not restored.results[-1].degraded
