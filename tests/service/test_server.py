"""QueryServer lifecycle, event loop, and checkpoint/restore behaviour."""

from __future__ import annotations

import random
from collections import Counter as PyCounter

import pytest

from repro.core import RedoopRuntime
from repro.hadoop import BatchFile, Cluster, Record, small_test_config
from repro.service import (
    ACCEPTED,
    PAUSED,
    RUNNING,
    STALE,
    CheckpointError,
    QuerySpec,
    QueryServer,
)
from repro.trace import CAT_SERVICE

FACTORY = "tests.service.factories:wordcount_query"
RATE = 500_000.0  # oversize-pane regime, like tests/core/test_runtime.py


def spec_for(name, win=40.0, slide=10.0, source="S1", job_name=None):
    kwargs = {"win": win, "slide": slide, "name": name, "source": source}
    if job_name is not None:
        kwargs["job_name"] = job_name
    return QuerySpec(
        name=name, factory=FACTORY, kwargs=kwargs, rates={source: RATE}
    )


def make_server(**kwargs) -> QueryServer:
    cluster = Cluster(small_test_config(), seed=3)
    return QueryServer(RedoopRuntime(cluster), **kwargs)


def batch(i, t0, t1, source="S1", n=20, key_space=5):
    rng = random.Random(i)
    dt = (t1 - t0) / n
    records = [
        Record(ts=t0 + j * dt, value=f"w{rng.randrange(key_space)}", size=100)
        for j in range(n)
    ]
    return (
        BatchFile(path=f"/b/{source}/{i}", source=source, t_start=t0, t_end=t1),
        records,
    )


def feed(server, upto, batch_seconds=10.0, source="S1"):
    """Offer consecutive batches covering [0, upto); returns records."""
    fed = []
    i, t = 0, 0.0
    while t < upto - 1e-9:
        b, records = batch(i, t, t + batch_seconds, source=source)
        if server.offer(b, records) == ACCEPTED:
            fed.extend(records)
        i += 1
        t += batch_seconds
    return fed


def expect_counts(records, start, end):
    return dict(PyCounter(r.value for r in records if start <= r.ts < end))


class TestLifecycle:
    def test_submit_registers_and_opens_channel(self):
        server = make_server()
        query = server.submit(spec_for("q1"))
        assert query.name == "q1"
        assert server.status("q1") == RUNNING
        assert "S1" in server.channels
        assert server.runtime.queries() == ["q1"]
        assert server.counters.get("service.queries_submitted") == 1

    def test_duplicate_submit_rejected(self):
        server = make_server()
        server.submit(spec_for("q1"))
        with pytest.raises(ValueError, match="already registered"):
            server.submit(spec_for("q1"))

    def test_missing_rates_rejected(self):
        server = make_server()
        bad = QuerySpec(
            name="q1",
            factory=FACTORY,
            kwargs={"win": 40.0, "slide": 10.0, "name": "q1"},
            rates={},
        )
        with pytest.raises(ValueError, match="rates"):
            server.submit(bad)

    def test_pause_resume_cycle(self):
        server = make_server()
        server.submit(spec_for("q1"))
        server.pause("q1")
        assert server.status("q1") == PAUSED
        server.pause("q1")  # idempotent
        assert server.counters.get("service.queries_paused") == 1
        server.resume("q1")
        assert server.status("q1") == RUNNING

    def test_deregister_closes_orphan_channel(self):
        server = make_server()
        server.submit(spec_for("q1"))
        server.submit(spec_for("q2", source="S2"))
        server.deregister("q1")
        assert "S1" not in server.channels
        assert "S2" in server.channels
        assert server.tenants() == {"q2": "running"}
        with pytest.raises(KeyError):
            server.status("q1")

    def test_shared_channel_survives_one_tenant_leaving(self):
        server = make_server()
        server.submit(spec_for("q1"))
        server.submit(spec_for("q2", win=20.0))
        server.deregister("q1")
        assert "S1" in server.channels

    def test_unknown_names_raise(self):
        server = make_server()
        for method in (server.pause, server.resume, server.deregister):
            with pytest.raises(KeyError):
                method("ghost")

    def test_lifecycle_events_on_spine(self):
        server = make_server()
        server.submit(spec_for("q1"))
        server.pause("q1")
        server.resume("q1")
        server.deregister("q1")
        names = [e.name for e in server.tracer.events(category=CAT_SERVICE)]
        assert names == ["submit", "pause", "resume", "deregister"]


class TestEventLoop:
    def test_recurrences_fire_with_correct_output(self):
        server = make_server()
        server.submit(spec_for("q1"))
        records = feed(server, 60.0)
        fired = server.run_until(60.0)
        assert [(r.query, r.recurrence) for r in fired] == [("q1", 1), ("q1", 2), ("q1", 3)]
        assert dict(fired[0].output) == expect_counts(records, 0.0, 40.0)
        assert dict(fired[1].output) == expect_counts(records, 10.0, 50.0)
        assert server.now >= 60.0

    def test_multi_tenant_due_order(self):
        server = make_server()
        server.submit(spec_for("qa", win=20.0, slide=10.0))
        server.submit(spec_for("qb", win=30.0, slide=15.0))
        feed(server, 60.0)
        fired = server.run_until(60.0)
        dues = [(r.due_time, r.query) for r in fired]
        assert dues == sorted(dues)

    def test_run_until_past_is_noop(self):
        server = make_server()
        server.submit(spec_for("q1"))
        feed(server, 40.0)
        server.run_until(40.0)
        before = server.now
        assert server.run_until(10.0) == []
        assert server.now == before

    def test_granularity_independence(self):
        """Many small ticks produce exactly one big tick's outputs."""

        def run(tick):
            server = make_server()
            server.submit(spec_for("qa", win=20.0, slide=10.0))
            server.submit(spec_for("qb", win=40.0, slide=20.0))
            i, t = 0, 0.0
            while t < 80.0 - 1e-9:
                b, records = batch(i, t, t + 10.0)
                server.offer(b, records)
                i += 1
                t += 10.0
                boundary = t
                while tick < 10.0 and boundary - tick > server.now:
                    server.run_until(server.now + tick)
                server.run_until(boundary)
            return [(r.query, r.recurrence, r.output) for r in server.results]

        assert run(10.0) == run(3.0)

    def test_paused_tenant_backlog_fires_on_resume(self):
        server = make_server()
        server.submit(spec_for("q1"))
        feed(server, 40.0)
        server.pause("q1")
        assert server.run_until(40.0) == []
        server.resume("q1")
        fired = server.run_until(40.0)
        assert [r.recurrence for r in fired] == [1]

    def test_late_fire_counts_deadline_miss(self):
        server = make_server()
        server.submit(spec_for("q1"))
        server.pause("q1")
        feed(server, 60.0)
        server.run_until(60.0)  # clock reaches 60 with nothing fired
        server.resume("q1")
        server.run_until(60.0)
        assert server.counters.get("service.deadline_misses") >= 1

    def test_starved_tenant_counts_data_stall_once(self):
        server = make_server()
        server.submit(spec_for("q1"))
        feed(server, 30.0)  # window 1 needs data through 40
        server.run_until(50.0)
        server.run_until(55.0)
        assert server.counters.get("service.data_stalls") == 1
        stalls = [
            e for e in server.tracer.events(category=CAT_SERVICE)
            if e.name == "data-stall"
        ]
        assert len(stalls) == 1

    def test_late_submit_catches_up_on_old_panes(self):
        server = make_server()
        server.submit(spec_for("q1"))
        records = feed(server, 40.0)
        server.run_until(40.0)
        server.submit(spec_for("q2", win=20.0, slide=20.0, job_name="wc2"))
        fired = server.run_until(40.0)
        assert [(r.query, r.recurrence) for r in fired] == [("q2", 1), ("q2", 2)]
        assert dict(fired[1].output) == expect_counts(records, 20.0, 40.0)
        assert server.counters.get("runtime.panes_caught_up") >= 2


class TestCheckpointRestore:
    def test_restore_resumes_mid_stream(self, tmp_path):
        server = make_server()
        server.submit(spec_for("q1"))
        all_records = []
        for i in range(6):
            b, records = batch(i, i * 10.0, (i + 1) * 10.0)
            all_records.extend(records)

        def drive(srv, upto):
            for i in range(6):
                b, records = batch(i, i * 10.0, (i + 1) * 10.0)
                if b.t_end <= upto:
                    srv.offer(b, records)
                    srv.run_until(b.t_end)

        def fingerprints(srv):
            return [
                (r.query, r.recurrence, r.due_time, r.finish_time, r.output)
                for r in srv.results
            ]

        drive(server, 50.0)
        assert len(server.results) == 2
        path = server.checkpoint(tmp_path / "ck.bin")
        dead_results = fingerprints(server)
        del server

        restored = QueryServer.restore(path)
        assert restored.tenants() == {"q1": "running"}
        assert fingerprints(restored) == dead_results
        # Replaying the full schedule: covered offers are stale.
        b0, r0 = batch(0, 0.0, 10.0)
        assert restored.offer(b0, r0) == STALE
        drive(restored, 60.0)
        restored.run_until(60.0)
        outputs = {r.recurrence: dict(r.output) for r in restored.results}
        assert outputs[3] == expect_counts(all_records, 20.0, 60.0)
        assert restored.counters.get("service.restores") == 1

    def test_restore_rejects_foreign_pickle(self, tmp_path):
        from repro.service import save_checkpoint
        from .factories import wordcount_query

        spec = spec_for("q1")
        query = wordcount_query(40.0, 10.0, name="q1")
        path = save_checkpoint(
            tmp_path / "ck.bin",
            specs={"q1": spec},
            queries={"q1": query},
            graph={"not": "a server"},
        )
        with pytest.raises(CheckpointError, match="QueryServer"):
            QueryServer.restore(path)

    def test_pending_channel_batches_survive(self, tmp_path):
        server = make_server()
        server.submit(spec_for("q1"))
        b0, r0 = batch(0, 0.0, 10.0)
        server.offer(b0, r0)  # never delivered
        path = server.checkpoint(tmp_path / "ck.bin")
        restored = QueryServer.restore(path)
        assert len(restored.channels["S1"]) == 1
        assert restored.channels["S1"].peek_time() == 10.0
