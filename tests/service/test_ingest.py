"""Admission-control behaviour of per-source ingest channels."""

from __future__ import annotations

import pytest

from repro.hadoop import BatchFile, Counters, Record
from repro.service import ACCEPTED, DEFERRED, SHED, STALE, IngestChannel


def make_batch(i: int, t0: float, t1: float, source: str = "S1"):
    records = [Record(ts=t0, value="w", size=100)]
    return (
        BatchFile(path=f"/b/{source}/{i}", source=source, t_start=t0, t_end=t1),
        records,
    )


class TestAdmission:
    def test_accept_advances_horizon_in_order(self):
        ch = IngestChannel("S1", counters=Counters())
        b0, r0 = make_batch(0, 0.0, 5.0)
        b1, r1 = make_batch(1, 5.0, 10.0)
        assert ch.offer(b0, r0) == ACCEPTED
        assert ch.offer(b1, r1) == ACCEPTED
        assert ch.accepted_until == 10.0
        assert len(ch) == 2
        assert ch.counters.get("service.batches_accepted") == 2

    def test_reoffer_is_stale(self):
        ch = IngestChannel("S1", counters=Counters())
        b0, r0 = make_batch(0, 0.0, 5.0)
        assert ch.offer(b0, r0) == ACCEPTED
        assert ch.offer(b0, r0) == STALE
        assert len(ch) == 1  # not enqueued twice
        assert ch.counters.get("service.batches_stale") == 1

    def test_straddling_batch_rejected(self):
        ch = IngestChannel("S1", counters=Counters())
        b0, r0 = make_batch(0, 0.0, 5.0)
        ch.offer(b0, r0)
        bad, records = make_batch(1, 2.5, 7.5)
        with pytest.raises(ValueError, match="straddles"):
            ch.offer(bad, records)

    def test_wrong_source_rejected(self):
        ch = IngestChannel("S1", counters=Counters())
        b, r = make_batch(0, 0.0, 5.0, source="S2")
        with pytest.raises(ValueError, match="S2"):
            ch.offer(b, r)

    def test_defer_policy_backpressures_without_loss(self):
        ch = IngestChannel("S1", capacity=2, policy="defer", counters=Counters())
        for i in range(2):
            ch.offer(*make_batch(i, i * 5.0, (i + 1) * 5.0))
        b2, r2 = make_batch(2, 10.0, 15.0)
        assert ch.offer(b2, r2) == DEFERRED
        # Horizon untouched: the producer still owns the batch.
        assert ch.accepted_until == 10.0
        assert ch.counters.get("service.batches_deferred") == 1
        ch.pop()
        assert ch.offer(b2, r2) == ACCEPTED
        assert ch.accepted_until == 15.0

    def test_shed_policy_drops_and_advances(self):
        ch = IngestChannel("S1", capacity=1, policy="shed", counters=Counters())
        ch.offer(*make_batch(0, 0.0, 5.0))
        b1, r1 = make_batch(1, 5.0, 10.0)
        assert ch.offer(b1, r1) == SHED
        assert ch.accepted_until == 10.0  # range is gone for good
        assert ch.shed_ranges == [(5.0, 10.0)]
        assert ch.counters.get("service.batches_shed") == 1
        assert ch.counters.get("service.bytes_shed") == sum(r.size for r in r1)
        # The shed range never comes back: re-offering it is stale.
        assert ch.offer(b1, r1) == STALE

    def test_peak_depth_tracks_high_water(self):
        ch = IngestChannel("S1", capacity=8, counters=Counters())
        for i in range(3):
            ch.offer(*make_batch(i, i * 5.0, (i + 1) * 5.0))
        ch.pop()
        ch.pop()
        assert ch.peak_depth == 3
        assert len(ch) == 1


class TestConsumerSide:
    def test_pop_in_time_order(self):
        ch = IngestChannel("S1", counters=Counters())
        for i in range(3):
            ch.offer(*make_batch(i, i * 5.0, (i + 1) * 5.0))
        assert ch.peek_time() == 5.0
        popped = [ch.pop()[0].t_end for _ in range(3)]
        assert popped == [5.0, 10.0, 15.0]
        assert ch.peek_time() is None

    def test_pop_empty_raises(self):
        ch = IngestChannel("S1", counters=Counters())
        with pytest.raises(IndexError):
            ch.pop()


class TestConstruction:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            IngestChannel("S1", capacity=0)

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            IngestChannel("S1", policy="drop-newest")


class TestGapRejection:
    def test_gap_leaving_offer_rejected(self):
        from repro.service import GAP

        ch = IngestChannel("S1", counters=Counters())
        ch.offer(*make_batch(0, 0.0, 5.0))
        # [10, 15) would leave [5, 10) permanently unaccounted: the
        # horizon must not advance past data nobody offered.
        late, records = make_batch(1, 10.0, 15.0)
        assert ch.offer(late, records) == GAP
        assert ch.accepted_until == 5.0
        assert len(ch) == 1  # not enqueued
        assert ch.counters.get("service.batches_gap_rejected") == 1

    def test_contiguous_offer_still_accepted_after_gap_attempt(self):
        from repro.service import GAP

        ch = IngestChannel("S1", counters=Counters())
        ch.offer(*make_batch(0, 0.0, 5.0))
        assert ch.offer(*make_batch(1, 10.0, 15.0)) == GAP
        # The producer retries with the missing range first.
        assert ch.offer(*make_batch(2, 5.0, 10.0)) == ACCEPTED
        assert ch.offer(*make_batch(3, 10.0, 15.0)) == ACCEPTED
        assert ch.accepted_until == 15.0

    def test_first_offer_must_start_at_zero_horizon(self):
        from repro.service import GAP

        ch = IngestChannel("S1", counters=Counters())
        b, r = make_batch(0, 5.0, 10.0)
        assert ch.offer(b, r) == GAP
        assert ch.accepted_until == 0.0
