"""Shared fixtures and factories for the test suite."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.hadoop import (
    Cluster,
    MapReduceJob,
    Record,
    small_test_config,
)


def make_records(
    n: int,
    *,
    t0: float = 0.0,
    dt: float = 1.0,
    size: int = 100,
    key_space: int = 10,
    seed: int = 0,
) -> List[Record]:
    """``n`` records with evenly spaced timestamps and pseudo-random words."""
    rng = random.Random(seed)
    return [
        Record(
            ts=t0 + i * dt,
            value=f"word{rng.randrange(key_space)}",
            size=size,
        )
        for i in range(n)
    ]


def wordcount_job(num_reducers: int = 4, name: str = "wordcount") -> MapReduceJob:
    """The canonical word-count job used across tests."""

    def mapper(record: Record):
        yield record.value, 1

    def reducer(key, values):
        yield key, sum(values)

    return MapReduceJob(
        name=name,
        mapper=mapper,
        reducer=reducer,
        combiner=reducer,
        num_reducers=num_reducers,
    )


@pytest.fixture
def small_cluster() -> Cluster:
    """A fresh 4-node cluster with small blocks, deterministic seed."""
    return Cluster(small_test_config(), seed=7)


@pytest.fixture
def cluster8() -> Cluster:
    """An 8-node cluster for scheduling-heavy tests."""
    return Cluster(small_test_config(num_nodes=8), seed=11)
