"""Shared mini-workload configs for the chaos tests.

Tiny windows (win=40s, slide=20s) and low rates keep each differential
comparison — two full multi-window runs — inside the fast lane's
budget; the CLI-scale sweeps live behind ``@pytest.mark.slow``.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentConfig
from repro.hadoop import small_test_config


def mini_config(kind: str = "aggregation", **overrides) -> ExperimentConfig:
    defaults = dict(
        kind=kind,
        win=40.0,
        overlap=0.5,
        num_windows=5,
        rate=2_000_000.0 if kind == "aggregation" else 1_500_000.0,
        record_size=200_000 if kind == "aggregation" else 150_000,
        num_reducers=4,
        cluster_config=small_test_config(),
        seed=11,
        batches_per_pane=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
