"""The chaos driver: event application, bookkeeping, and trace output."""

from __future__ import annotations


from repro.bench.harness import build_workload, run_redoop_series
from repro.chaos import ChaosEvent, ChaosSchedule, run_chaos_series
from repro.hadoop import small_test_config
from repro.trace import CAT_CHAOS

from .conftest import mini_config


class TestEventApplication:
    def test_events_recorded_in_order(self):
        cfg = mini_config()
        sched = ChaosSchedule(
            seed=2,
            events=(
                ChaosEvent(at=45.0, kind="cache-loss", fraction=0.3),
                ChaosEvent(at=65.0, kind="cache-corrupt", fraction=0.3),
            ),
        )
        report = run_chaos_series(cfg, sched)
        assert len(report.events_applied) == 2
        assert "cache-loss" in report.events_applied[0]
        assert "cache-corrupt" in report.events_applied[1]
        assert report.series.tracer is not None
        counters = {
            e.attrs.get("kind")
            for e in report.series.tracer.events(category=CAT_CHAOS)
            if e.name == "chaos.event"
        }
        assert {"cache-loss", "cache-corrupt"} <= counters

    def test_injection_counter_matches_applied(self):
        cfg = mini_config()
        sched = ChaosSchedule(
            seed=2,
            events=(
                ChaosEvent(at=45.0, kind="task-kill", prob=0.2),
                ChaosEvent(at=55.0, kind="task-kill", prob=0.0),
                ChaosEvent(at=62.0, kind="node-kill"),
                ChaosEvent(at=78.0, kind="node-recover"),
            ),
        )
        report = run_chaos_series(cfg, sched)
        # One sample of the runtime counters suffices: the driver
        # increments chaos.events_injected once per applied event.
        assert len(report.events_applied) == 4
        assert report.ok, report.violations

    def test_never_kills_the_last_node(self):
        cfg = mini_config(
            cluster_config=small_test_config(num_nodes=1), num_reducers=2
        )
        sched = ChaosSchedule(
            seed=2, events=(ChaosEvent(at=45.0, kind="node-kill"),)
        )
        report = run_chaos_series(cfg, sched)
        assert report.events_applied == []  # skipped, run completed
        assert len(report.series.windows) == cfg.num_windows

    def test_node_recover_without_outage_is_noop(self):
        cfg = mini_config()
        sched = ChaosSchedule(
            seed=2, events=(ChaosEvent(at=45.0, kind="node-recover"),)
        )
        report = run_chaos_series(cfg, sched)
        assert report.events_applied == []
        assert report.ok

    def test_ingest_burst_is_output_neutral(self):
        cfg = mini_config()
        workload = build_workload(cfg)
        baseline = run_redoop_series(cfg, workload=workload)
        sched = ChaosSchedule(
            seed=2,
            events=(ChaosEvent(at=30.0, kind="ingest-burst", count=3),),
        )
        report = run_chaos_series(cfg, sched, workload=workload)
        assert len(report.events_applied) == 1
        assert report.series.output_digests == baseline.output_digests
        assert report.ok

    def test_straggler_slows_but_does_not_change_output(self):
        cfg = mini_config()
        workload = build_workload(cfg)
        baseline = run_redoop_series(cfg, workload=workload)
        sched = ChaosSchedule(
            seed=2,
            events=(
                ChaosEvent(at=45.0, kind="slow-node", node_id=0, speed=0.25),
            ),
        )
        report = run_chaos_series(cfg, sched, workload=workload)
        assert report.series.output_digests == baseline.output_digests
        assert report.ok


class TestDegradedBookkeeping:
    def test_exhaustion_surfaces_as_degraded_window(self):
        cfg = mini_config()
        sched = ChaosSchedule(
            seed=2,
            events=(ChaosEvent(at=45.0, kind="task-exhaust", doom="/w3/"),),
        )
        report = run_chaos_series(cfg, sched)
        assert report.degraded_windows == [3]
        assert report.series.output_digests[2] == ()
        # Later windows still produce output.
        assert report.series.output_digests[3] != ()
        assert report.ok, report.violations
