"""The differential recovery oracle: output neutrality, end to end."""

from __future__ import annotations

import pytest

from repro.chaos import ChaosEvent, ChaosSchedule, run_differential

from .conftest import mini_config


def composed_schedule() -> ChaosSchedule:
    """Every recoverable fault domain, composed mid-flight."""
    return ChaosSchedule(
        seed=3,
        events=(
            ChaosEvent(at=45.0, kind="task-kill", prob=0.3),
            ChaosEvent(at=55.0, kind="node-kill"),
            ChaosEvent(at=62.0, kind="cache-corrupt", fraction=0.5),
            ChaosEvent(at=70.0, kind="node-recover"),
            ChaosEvent(at=75.0, kind="cache-loss", fraction=0.4),
            ChaosEvent(at=82.0, kind="slow-node", node_id=1, speed=0.5),
            ChaosEvent(at=95.0, kind="slow-node", node_id=1, speed=1.0),
            ChaosEvent(at=100.0, kind="task-kill", prob=0.0),
        ),
    )


class TestOutputNeutrality:
    @pytest.mark.parametrize("kind", ["aggregation", "join"])
    def test_composed_faults_are_output_neutral(self, kind):
        report = run_differential(mini_config(kind), composed_schedule())
        assert report.mismatched_windows == []
        assert report.violations == []
        assert report.ok
        assert len(report.chaos.events_applied) == 8

    def test_summary_mentions_verdict(self):
        report = run_differential(mini_config(), composed_schedule())
        text = report.summary()
        assert "verdict: OK" in text
        assert "injected" in text


class TestDegradedWindows:
    def test_degraded_window_is_sanctioned_divergence(self):
        sched = ChaosSchedule(
            seed=5,
            events=(ChaosEvent(at=45.0, kind="task-exhaust", doom="/w3/"),),
        )
        report = run_differential(mini_config(), sched)
        assert report.degraded_windows == [3]
        # The degraded window's (empty) output differs from baseline but
        # is not a mismatch; every later window converges back exactly.
        assert report.mismatched_windows == []
        assert (
            report.chaos.series.output_digests[2]
            != report.baseline.output_digests[2]
        )
        for i in (3, 4):
            assert (
                report.chaos.series.output_digests[i]
                == report.baseline.output_digests[i]
            )
        assert report.ok

    def test_summary_reports_degradation(self):
        sched = ChaosSchedule(
            seed=5,
            events=(ChaosEvent(at=45.0, kind="task-exhaust", doom="/w2/"),),
        )
        report = run_differential(mini_config(), sched)
        assert "degraded windows" in report.summary()


class TestRandomizedSweep:
    def test_fast_three_seed_sweep(self):
        cfg = mini_config("join")
        for seed in (1, 2, 3):
            sched = ChaosSchedule.random(
                seed,
                horizon=cfg.horizon,
                num_nodes=cfg.cluster_config.num_nodes,
                num_windows=cfg.num_windows,
                slide=cfg.slide,
                events_per_window=1.5,
            )
            report = run_differential(cfg, sched)
            assert report.ok, f"seed {seed}:\n{report.summary()}"

    @pytest.mark.slow
    def test_ten_seed_sweep_with_exhaustion(self):
        # The acceptance sweep: >= 10 random seeds, all fault domains,
        # plus a doomed window per run; recovery must hold everywhere.
        cfg = mini_config("join")
        for seed in range(1, 11):
            sched = ChaosSchedule.random(
                seed,
                horizon=cfg.horizon,
                num_nodes=cfg.cluster_config.num_nodes,
                num_windows=cfg.num_windows,
                slide=cfg.slide,
                events_per_window=2.0,
                exhaust_window=3,
            )
            report = run_differential(cfg, sched)
            assert report.ok, f"seed {seed}:\n{report.summary()}"
            assert 3 in report.degraded_windows
