"""Real-process worker faults under the chaos harness.

``worker-kill`` / ``worker-hang`` events crash and hang *actual* pool
workers mid-run; the differential oracle then pins the supervised
process backend's digests to a fault-free serial run. Deadlines stay
small (≤ 2s) so a hung worker can never stall the fast lane.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    ChaosEvent,
    ChaosSchedule,
    EVENT_KINDS,
    run_chaos_series,
    run_worker_fault_differential,
)
from repro.exec import ProcessPoolBackend

from .conftest import mini_config


def worker_schedule(**first_kwargs) -> ChaosSchedule:
    """A kill and a hang, early enough to be consumed mid-run."""
    return ChaosSchedule(
        seed=4,
        events=(
            ChaosEvent(at=45.0, kind="worker-kill", **first_kwargs),
            ChaosEvent(at=55.0, kind="worker-hang"),
        ),
    )


class TestScheduleKinds:
    def test_worker_kinds_are_registered(self):
        assert "worker-kill" in EVENT_KINDS
        assert "worker-hang" in EVENT_KINDS

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count must be positive"):
            ChaosEvent(at=10.0, kind="worker-kill", count=0)
        # count=None means "one fault" and is fine.
        ChaosEvent(at=10.0, kind="worker-hang")

    def test_json_round_trip(self):
        sched = worker_schedule(count=2)
        revived = ChaosSchedule.from_json(sched.to_json())
        assert revived == sched
        assert [e.kind for e in revived.events] == [
            "worker-kill",
            "worker-hang",
        ]

    def test_random_schedules_scatter_worker_events(self):
        kwargs = dict(
            horizon=120.0,
            num_nodes=4,
            num_windows=5,
            slide=20.0,
            events_per_window=0.0,
            worker_kills=2,
            worker_hangs=1,
        )
        sched = ChaosSchedule.random(9, **kwargs)
        kinds = [e.kind for e in sched.events]
        assert kinds.count("worker-kill") == 2
        assert kinds.count("worker-hang") == 1
        assert all(0 <= e.at <= 120.0 for e in sched.events)
        # Seeded: the same call replays the same scattering.
        assert ChaosSchedule.random(9, **kwargs) == sched


class TestDriverApplication:
    def test_serial_backend_skips_worker_events(self):
        # The default runtime backend is serial: real worker faults
        # have nowhere to land, so the events report applied=False.
        report = run_chaos_series(mini_config(), worker_schedule())
        assert report.events_applied == []
        assert report.ok, report.violations

    def test_process_backend_consumes_worker_events(self):
        backend = ProcessPoolBackend(
            workers=2, batch_deadline=2.0, backoff_base=0.01
        )
        try:
            report = run_chaos_series(
                mini_config(), worker_schedule(), backend=backend
            )
            # Leftover armed faults are drained at end of run, so a
            # shared backend cannot leak faults into the next series.
            assert backend.pending_worker_faults() == 0
            assert backend.pool_healthy()
        finally:
            backend.close()
        assert len(report.events_applied) == 2
        assert any("worker-kill" in d for d in report.events_applied)
        assert any("worker-hang" in d for d in report.events_applied)
        assert report.series.runtime_counters.get("exec.worker_lost", 0) > 0
        assert report.ok, report.violations


class TestWorkerFaultDifferential:
    def test_kill_and_hang_are_output_neutral(self):
        report = run_worker_fault_differential(
            mini_config(), worker_schedule(), batch_deadline=2.0
        )
        assert report.worker_events_applied
        assert report.faults_exercised
        assert report.mismatched_windows == []
        assert report.degraded_windows == []
        assert report.ok, report.summary()
        assert "recovery:" in report.summary()

    def test_join_workload_parity_under_kills(self):
        sched = ChaosSchedule(
            seed=6,
            events=(ChaosEvent(at=45.0, kind="worker-kill", count=2),),
        )
        report = run_worker_fault_differential(
            mini_config("join"), sched, batch_deadline=2.0
        )
        assert report.faults_exercised
        assert report.mismatched_windows == []
        assert report.ok, report.summary()

    def test_terminal_fault_degrades_one_window_and_converges(self):
        # A rebuild budget of zero turns the first worker loss into the
        # terminal path: WorkerFaultError -> TaskAttemptsExhaustedError
        # -> degraded window with cache rollback. Later windows must
        # converge back to the fault-free baseline exactly.
        backend = ProcessPoolBackend(
            workers=2,
            batch_deadline=2.0,
            max_task_retries=0,
            max_pool_rebuilds=0,
        )
        sched = ChaosSchedule(
            seed=8, events=(ChaosEvent(at=45.0, kind="worker-kill"),)
        )
        try:
            report = run_worker_fault_differential(
                mini_config(), sched, backend=backend
            )
        finally:
            backend.close()
        assert report.faults_exercised
        assert report.degraded_windows != []
        assert report.mismatched_windows == []
        last = len(report.baseline.output_digests) - 1
        assert (
            report.chaos.series.output_digests[last]
            == report.baseline.output_digests[last]
        )
        assert report.ok, report.summary()

    def test_armed_but_unexercised_run_fails_the_verdict(self):
        # A worker event that never actually lost a worker proves
        # nothing — the report must refuse to claim fault coverage even
        # when every digest matches.
        from repro.bench.harness import run_redoop_series
        from repro.chaos import WorkerFaultDifferentialReport
        from repro.chaos.driver import ChaosReport

        cfg = mini_config(num_windows=2)
        baseline = run_redoop_series(cfg)
        sched = ChaosSchedule(
            seed=2, events=(ChaosEvent(at=45.0, kind="worker-kill"),)
        )
        report = WorkerFaultDifferentialReport(
            schedule=sched,
            baseline=baseline,
            chaos=ChaosReport(
                schedule=sched,
                series=baseline,
                events_applied=["t=45s worker-kill"],
            ),
            exec_counters={},  # no exec.worker_lost: injection was a no-op
        )
        assert report.worker_events_applied
        assert not report.faults_exercised
        assert not report.ok
        assert "NO WORKER WAS LOST" in report.summary()
