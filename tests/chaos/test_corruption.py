"""Cache integrity: silent corruption is detected on read and healed."""

from __future__ import annotations

import pytest

from repro.core import (
    REDUCE_INPUT,
    REDUCE_OUTPUT,
    CacheCorruptionError,
    RecoveryManager,
)
from repro.hadoop import FaultInjector

from tests.core.test_runtime import feed, make_runtime


@pytest.fixture
def warm_pair():
    """Two identical warm runtimes; one gets corrupted, one stays clean."""
    pair = []
    for _ in range(2):
        runtime = make_runtime()
        feed(runtime, 90.0)
        runtime.run_recurrence("wc", 1)
        pair.append(runtime)
    return pair


class TestCorruptCache:
    def test_metadata_untouched_until_read(self, warm_pair):
        runtime, _ = warm_pair
        recovery = RecoveryManager(runtime)
        victim = recovery.live_caches()[0]
        recovery.corrupt_cache(victim)
        registry = runtime.registries()[victim.node_id]
        # The registry row, file, placement, and ready bit all survive —
        # corruption is silent by construction.
        assert registry.has(victim.pid, victim.cache_type, victim.partition)
        assert (
            runtime.controller.placement(
                victim.pid, victim.cache_type, victim.partition
            )
            == victim.node_id
        )
        # ...but verification and reads see through it.
        assert not registry.verify(
            victim.pid, victim.cache_type, victim.partition
        )
        with pytest.raises(CacheCorruptionError):
            registry.read(victim.pid, victim.cache_type, victim.partition)
        assert runtime.counters.get("faults.caches_corrupted") == 1

    def test_corrupting_missing_cache_rejected(self, warm_pair):
        runtime, _ = warm_pair
        recovery = RecoveryManager(runtime)
        from repro.core import LostCache

        with pytest.raises(ValueError):
            recovery.corrupt_cache(
                LostCache(node_id=99, pid="wc:S1P0", cache_type=1, partition=0)
            )

    def test_chaos_trace_instant_emitted(self, warm_pair):
        runtime, _ = warm_pair
        recovery = RecoveryManager(runtime)
        recovery.corrupt_cache(recovery.live_caches()[0])
        names = [e.name for e in runtime.tracer.events(category="chaos")]
        assert "chaos.cache_corrupted" in names


class TestSelfHealing:
    def test_corrupt_rin_heals_via_remap(self, warm_pair):
        corrupted, clean = warm_pair
        recovery = RecoveryManager(corrupted)
        recovery.inject_cache_corruption(
            FaultInjector(cache_corruption_fraction=1.0, seed=4),
            cache_type=REDUCE_INPUT,
        )
        got = corrupted.run_recurrence("wc", 2)
        want = clean.run_recurrence("wc", 2)
        assert sorted(map(repr, got.output)) == sorted(map(repr, want.output))

    def test_corrupt_rout_detected_and_healed(self, warm_pair):
        corrupted, clean = warm_pair
        recovery = RecoveryManager(corrupted)
        victims = recovery.inject_cache_corruption(
            FaultInjector(cache_corruption_fraction=1.0, seed=4),
            cache_type=REDUCE_OUTPUT,
        )
        assert victims
        got = corrupted.run_recurrence("wc", 2)
        want = clean.run_recurrence("wc", 2)
        assert sorted(map(repr, got.output)) == sorted(map(repr, want.output))
        assert corrupted.counters.get("cache.corruptions_detected") >= 1
        # Detection funnels through the rollback path (reason=corrupt).
        lost = [
            e
            for e in corrupted.tracer.events(category="fault")
            if e.name == "cache.lost" and e.attrs.get("reason") == "corrupt"
        ]
        assert lost


class TestInjectionFiltering:
    def test_cache_type_filter(self, warm_pair):
        runtime, _ = warm_pair
        recovery = RecoveryManager(runtime)
        victims = recovery.inject_cache_corruption(
            FaultInjector(seed=4),
            cache_type=REDUCE_INPUT,
            fraction=0.5,
        )
        assert victims
        assert all(v.cache_type == REDUCE_INPUT for v in victims)

    def test_seeded_determinism(self, warm_pair):
        a, b = warm_pair
        victims_a = RecoveryManager(a).inject_cache_corruption(
            FaultInjector(seed=7), fraction=0.5
        )
        victims_b = RecoveryManager(b).inject_cache_corruption(
            FaultInjector(seed=7), fraction=0.5
        )
        assert [v.key for v in victims_a] == [v.key for v in victims_b]
