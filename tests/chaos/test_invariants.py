"""The cross-layer invariant checker: clean runs pass, drift is caught."""

from __future__ import annotations

import pytest

from repro.chaos import check_invariants
from repro.core import RecoveryManager
from repro.core.scheduler import MapTaskRequest

from tests.core.test_runtime import feed, make_runtime


@pytest.fixture
def warm_runtime():
    runtime = make_runtime()
    feed(runtime, 70.0)
    runtime.run_recurrence("wc", 1)
    return runtime


class TestCleanState:
    def test_fresh_runtime_consistent(self):
        assert check_invariants(make_runtime()) == []

    def test_warm_runtime_consistent(self, warm_runtime):
        assert check_invariants(warm_runtime) == []

    def test_consistent_after_managed_recovery(self, warm_runtime):
        # The sanctioned paths (RecoveryManager) leave no drift behind.
        recovery = RecoveryManager(warm_runtime)
        recovery.fail_node(1)
        assert check_invariants(warm_runtime) == []
        recovery.recover_node(1)
        assert check_invariants(warm_runtime) == []


class TestDriftDetection:
    def test_unmanaged_node_death_flagged(self, warm_runtime):
        # Killing the node behind the RecoveryManager's back leaves
        # placements pointing at a dead node and a stale registry.
        warm_runtime.cluster.fail_node(1)
        violations = check_invariants(warm_runtime)
        assert any("node is dead" in v for v in violations)
        assert any("dead node 1 registry" in v for v in violations)

    def test_vanished_local_file_flagged(self, warm_runtime):
        registry = warm_runtime.registries()[1]
        entry = registry.live_entries()[0]
        registry.node.delete_local(entry.local_name)
        violations = check_invariants(warm_runtime)
        assert any("no live registry entry" in v for v in violations) or any(
            "file is gone" in v for v in violations
        )

    def test_leftover_map_task_flagged(self, warm_runtime):
        warm_runtime.scheduler.enqueue_map(
            MapTaskRequest(
                query="wc", pid="wc:S1P0", input_bytes=100, locations=(1,)
            )
        )
        violations = check_invariants(warm_runtime)
        assert any("mapTaskList" in v for v in violations)

    def test_bogus_map_eligibility_flagged(self, warm_runtime):
        # A pane whose ready bit says CACHE_AVAILABLE must not be
        # map-eligible; forcing it in simulates a misfired listener.
        warm_runtime._map_eligible.add("wc:S1P0")
        violations = check_invariants(warm_runtime)
        assert any("map-eligible wc:S1P0" in v for v in violations)
