"""Graceful degradation: attempt exhaustion at the runtime level."""

from __future__ import annotations


from repro.core import RedoopRuntime
from repro.hadoop import Cluster, FaultInjector, small_test_config
from repro.trace import CAT_FAULT

from tests.core.test_runtime import RATE, feed, make_query



def make_doomed_runtime(doom: str = "/w2/") -> RedoopRuntime:
    cluster = Cluster(small_test_config(), seed=3)
    injector = FaultInjector(seed=9)
    injector.doom(doom)
    runtime = RedoopRuntime(cluster, fault_injector=injector)
    runtime.register_query(make_query(), {"S1": RATE})
    return runtime


class TestDegradedWindow:
    def test_run_survives_exhaustion(self):
        runtime = make_doomed_runtime()
        feed(runtime, 70.0)
        r1 = runtime.run_recurrence("wc", 1)
        assert not r1.degraded
        r2 = runtime.run_recurrence("wc", 2)
        assert r2.degraded
        assert r2.output == []
        assert runtime.counters.get("faults.windows_degraded") == 1
        assert r2.counters.get("faults.windows_degraded") == 1

    def test_later_windows_match_fault_free_run(self):
        doomed = make_doomed_runtime()
        clean_cluster = Cluster(small_test_config(), seed=3)
        clean = RedoopRuntime(clean_cluster)
        clean.register_query(make_query(), {"S1": RATE})
        feed(doomed, 90.0)
        feed(clean, 90.0)
        for recurrence in (1, 2, 3):
            got = doomed.run_recurrence("wc", recurrence)
            want = clean.run_recurrence("wc", recurrence)
            if recurrence == 2:
                assert got.degraded
                continue
            assert sorted(map(repr, got.output)) == sorted(
                map(repr, want.output)
            )

    def test_no_partial_caches_leak(self):
        # The degraded recurrence's published caches are rolled back:
        # nothing from window 2's fresh pane survives.
        runtime = make_doomed_runtime()
        feed(runtime, 70.0)
        runtime.run_recurrence("wc", 1)
        before = {
            (e.pid, e.cache_type, e.partition)
            for reg in runtime.registries().values()
            for e in reg.live_entries()
        }
        result = runtime.run_recurrence("wc", 2)
        assert result.degraded
        after = {
            (e.pid, e.cache_type, e.partition)
            for reg in runtime.registries().values()
            for e in reg.live_entries()
        }
        assert after <= before

    def test_scheduler_lists_drained(self):
        runtime = make_doomed_runtime()
        feed(runtime, 70.0)
        runtime.run_recurrence("wc", 1)
        runtime.run_recurrence("wc", 2)
        assert not runtime.scheduler.map_task_list
        assert not runtime.scheduler.reduce_task_list
        assert runtime.counters.get("sched.tasks_aborted") >= 0

    def test_degradation_is_traced(self):
        runtime = make_doomed_runtime()
        feed(runtime, 70.0)
        runtime.run_recurrence("wc", 1)
        runtime.run_recurrence("wc", 2)
        names = [e.name for e in runtime.tracer.events(category=CAT_FAULT)]
        assert "task.exhausted" in names
        assert "window.degraded" in names
        degraded = [
            e
            for e in runtime.tracer.events(category=CAT_FAULT)
            if e.name == "window.degraded"
        ][0]
        assert degraded.attrs["window"] == 2

    def test_doom_is_consumed(self):
        runtime = make_doomed_runtime()
        feed(runtime, 70.0)
        runtime.run_recurrence("wc", 1)
        runtime.run_recurrence("wc", 2)
        assert runtime.faults.doomed() == []
        r3 = runtime.run_recurrence("wc", 3)
        assert not r3.degraded
        assert r3.output
