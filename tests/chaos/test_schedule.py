"""ChaosEvent validation, schedule generation, and serialisation."""

from __future__ import annotations

import pickle

import pytest

from repro.chaos import ChaosEvent, ChaosSchedule, EVENT_KINDS


class TestEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos event kind"):
            ChaosEvent(at=1.0, kind="meteor-strike")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ChaosEvent(at=-1.0, kind="node-kill")

    @pytest.mark.parametrize(
        "kind,kwargs,missing",
        [
            ("task-kill", {}, "prob"),
            ("task-exhaust", {}, "doom"),
            ("cache-loss", {}, "fraction"),
            ("cache-corrupt", {}, "fraction"),
            ("slow-node", {"node_id": 1}, "speed"),
            ("slow-node", {"speed": 0.5}, "node_id"),
            ("ingest-burst", {}, "count"),
        ],
    )
    def test_required_params_enforced(self, kind, kwargs, missing):
        with pytest.raises(ValueError, match=kind):
            ChaosEvent(at=1.0, kind=kind, **kwargs)

    def test_node_kill_needs_nothing(self):
        ChaosEvent(at=0.0, kind="node-kill")
        ChaosEvent(at=0.0, kind="node-recover")

    def test_describe_names_the_kind_and_params(self):
        e = ChaosEvent(at=30.0, kind="cache-corrupt", fraction=0.5, cache_type=1)
        text = e.describe()
        assert "cache-corrupt" in text
        assert "fraction=0.5" in text
        assert "cache_type=1" in text


class TestScheduleOrdering:
    def test_events_sorted_by_time(self):
        sched = ChaosSchedule(
            seed=1,
            events=(
                ChaosEvent(at=50.0, kind="node-kill"),
                ChaosEvent(at=10.0, kind="cache-loss", fraction=0.3),
                ChaosEvent(at=30.0, kind="node-recover"),
            ),
        )
        assert [e.at for e in sched.events] == [10.0, 30.0, 50.0]
        assert len(sched) == 3


class TestRandomGeneration:
    KW = dict(horizon=100.0, num_nodes=4, num_windows=5, slide=20.0)

    def test_same_seed_same_schedule(self):
        a = ChaosSchedule.random(7, **self.KW)
        b = ChaosSchedule.random(7, **self.KW)
        assert a == b

    def test_different_seeds_differ(self):
        a = ChaosSchedule.random(7, **self.KW)
        b = ChaosSchedule.random(8, **self.KW)
        assert a != b

    def test_only_known_kinds(self):
        sched = ChaosSchedule.random(3, events_per_window=3.0, **self.KW)
        assert sched.events
        assert all(e.kind in EVENT_KINDS for e in sched.events)

    def test_at_most_one_node_down_at_a_time(self):
        # Kills and recoveries interleave; walking the sorted events
        # must never see two concurrent outages.
        for seed in range(1, 30):
            sched = ChaosSchedule.random(
                seed,
                include=("node-kill",),
                events_per_window=4.0,
                **self.KW,
            )
            down = 0
            for e in sched.events:
                if e.kind == "node-kill":
                    down += 1
                elif e.kind == "node-recover":
                    down -= 1
                assert 0 <= down <= 1, f"seed {seed}: {down} nodes down"

    def test_exhaust_window_adds_doom(self):
        sched = ChaosSchedule.random(5, exhaust_window=3, **self.KW)
        dooms = [e for e in sched.events if e.kind == "task-exhaust"]
        assert len(dooms) == 1
        assert dooms[0].doom == "/w3/"

    def test_exhaust_window_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            ChaosSchedule.random(5, exhaust_window=9, **self.KW)

    def test_needs_two_windows(self):
        with pytest.raises(ValueError, match="two windows"):
            ChaosSchedule.random(
                5, horizon=20.0, num_nodes=4, num_windows=1, slide=20.0
            )


class TestSerialisation:
    def make(self):
        return ChaosSchedule.random(
            9,
            horizon=100.0,
            num_nodes=4,
            num_windows=5,
            slide=20.0,
            events_per_window=2.0,
            exhaust_window=2,
        )

    def test_json_round_trip(self):
        sched = self.make()
        assert ChaosSchedule.from_json(sched.to_json()) == sched

    def test_json_is_replayable_text(self):
        text = self.make().to_json()
        assert '"seed": 9' in text
        assert '"events"' in text

    def test_pickle_round_trip(self):
        sched = self.make()
        assert pickle.loads(pickle.dumps(sched)) == sched
