"""Ingest bursts at the service layer leave query output unchanged."""

from __future__ import annotations


from repro.service import ACCEPTED, SHED

from tests.service.test_server import batch, make_server, spec_for


def digests(results):
    return {
        r.recurrence: tuple(sorted(map(repr, r.output))) for r in results
    }


def make_batches(upto, batch_seconds=10.0):
    out = []
    i, t = 0, 0.0
    while t < upto - 1e-9:
        out.append(batch(i, t, t + batch_seconds))
        i += 1
        t += batch_seconds
    return out


class TestBurstNeutrality:
    def test_bursty_offer_matches_smooth_offer(self):
        batches = make_batches(90.0)

        # Smooth: offer each batch, then advance past its seal time —
        # the server never sees more than one undelivered batch.
        smooth = make_server()
        smooth.submit(spec_for("q1", slide=20.0))
        smooth_results = []
        for b, records in batches:
            assert smooth.offer(b, records) == ACCEPTED
            smooth_results.extend(smooth.run_until(b.t_end))
        smooth_results.extend(smooth.run_until(90.0))

        # Bursty: dump everything upfront (an ingest burst), then run.
        bursty = make_server(channel_capacity=len(batches))
        bursty.submit(spec_for("q1", slide=20.0))
        for b, records in batches:
            assert bursty.offer(b, records) == ACCEPTED
        bursty_results = bursty.run_until(90.0)

        assert digests(smooth_results) == digests(bursty_results)
        assert digests(bursty_results)  # the run actually fired windows

    def test_overflow_sheds_instead_of_crashing(self):
        server = make_server(channel_capacity=2, admission_policy="shed")
        server.submit(spec_for("q1", slide=20.0))
        verdicts = [server.offer(b, r) for b, r in make_batches(60.0)]
        assert verdicts.count(ACCEPTED) == 2
        assert verdicts.count(SHED) == len(verdicts) - 2
        assert server.counters.get("service.batches_shed") == len(verdicts) - 2
