"""Drift guard: every counter the code emits must be documented.

Walks every module under ``src/`` with ``ast`` and collects the first
argument of each ``counters.increment(...)`` / ``self._count(...)``
call. Literal names must appear (in backticks) in ``docs/counters.md``;
f-string names (e.g. ``sched.reduce_rank{r}_dispatched``) are turned
into regexes that must match at least one documented token. The reverse
direction is pinned too: every counter listed in the doc's tables must
correspond to an emission site, so the doc cannot go stale.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DOC = REPO / "docs" / "counters.md"

#: Method names whose first string argument is a counter name.
_EMITTERS = {"increment", "_count"}


def _emitted_counters():
    """(literal names, f-string regexes) across all of src/."""
    literals = {}  # name -> first file seen
    patterns = {}  # regex -> first file seen
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        rel = str(path.relative_to(REPO))
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(
                func, "id", None
            )
            if name not in _EMITTERS:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                # Skip definitions like `def _count(rate, ...)` pass-through
                # callers with non-counter strings: counter names are dotted.
                if "." in first.value:
                    literals.setdefault(first.value, rel)
            elif isinstance(first, ast.JoinedStr):
                parts = []
                for piece in first.values:
                    if isinstance(piece, ast.Constant):
                        parts.append(re.escape(str(piece.value)))
                    else:
                        parts.append(r"[0-9A-Za-z_]+")
                patterns.setdefault("^" + "".join(parts) + "$", rel)
            # Anything else (ast.Name etc.) is a pass-through helper like
            # Counters.increment(name, amount) itself — not an emission site.
    return literals, patterns


def _documented_tokens():
    """(all backticked dotted tokens, tokens from table rows) in the doc."""
    text = DOC.read_text()
    every = {
        token
        for token in re.findall(r"`([a-z0-9_.{}]+)`", text)
        if "." in token
    }
    table = {
        token
        for line in text.splitlines()
        if line.lstrip().startswith("|")
        for token in re.findall(r"`([a-z0-9_.{}]+)`", line)
        if "." in token
    }
    return every, table


def _doc_token_regex(token: str) -> str:
    """A doc token may use ``{placeholder}`` for templated counters."""
    return "^" + re.sub(r"\\\{[a-z_]+\\\}", r"[0-9A-Za-z_]+", re.escape(token)) + "$"


def test_every_emitted_counter_is_documented():
    literals, _ = _emitted_counters()
    assert literals, "AST walk found no counter emissions — guard is broken"
    documented, _ = _documented_tokens()
    doc_regexes = [_doc_token_regex(t) for t in documented]
    missing = {
        name: where
        for name, where in literals.items()
        if not any(re.match(rx, name) for rx in doc_regexes)
    }
    assert not missing, (
        "counters emitted but not documented in docs/counters.md: "
        + ", ".join(f"{n} ({w})" for n, w in sorted(missing.items()))
    )


def test_fstring_counters_have_documented_family():
    _, patterns = _emitted_counters()
    assert patterns, "expected at least one templated counter (rank dispatch)"
    documented, _ = _documented_tokens()
    expanded = {t: re.sub(r"\{[a-z_]+\}", "0", t) for t in documented}
    for pattern, where in patterns.items():
        hits = [t for t, probe in expanded.items() if re.match(pattern, probe)]
        assert hits, (
            f"templated counter {pattern!r} from {where} matches no "
            "documented token in docs/counters.md"
        )


def test_exec_family_is_guarded():
    """The execution-backend counters ride the same guard.

    ``repro.exec`` deliberately imports nothing from the rest of the
    package, so it is the module most likely to drift out of the doc's
    orbit — pin that the AST walk sees its emissions and that each one
    resolves against docs/counters.md.
    """
    literals, _ = _emitted_counters()
    exec_literals = {n: w for n, w in literals.items() if n.startswith("exec.")}
    expected = {
        "exec.batches",
        "exec.tasks_dispatched",
        "exec.tasks_completed",
        "exec.pickle_fallbacks",
        "exec.process_pool_unavailable",
    }
    assert expected <= set(exec_literals), (
        "exec counter emissions missing from the AST walk: "
        + ", ".join(sorted(expected - set(exec_literals)))
    )
    assert all(w.startswith("src/repro/exec/") for w in exec_literals.values())
    # Physical measurements (wall seconds, queue depth) must NOT be
    # counters: the counter bag is compared bit-for-bit across repeat
    # runs, so they belong on the exec.* trace instants only.
    assert not {
        n for n in exec_literals if "wall" in n or "queue" in n
    }, "nondeterministic physical measurements leaked into the counter bag"

    documented, _ = _documented_tokens()
    doc_regexes = [_doc_token_regex(t) for t in documented]
    undocumented = {
        name
        for name in expected
        if not any(re.match(rx, name) for rx in doc_regexes)
    }
    assert not undocumented, (
        "exec counters not documented in docs/counters.md: "
        + ", ".join(sorted(undocumented))
    )


def test_plan_family_is_guarded():
    """The shared-scan counters ride the same guard.

    The `plan.*` family spans two emission layers (the runtime's
    absorb/publish/retire path and the service's submit-time prefix
    match), so pin both that the AST walk sees every member and that
    each one resolves against docs/counters.md.
    """
    literals, _ = _emitted_counters()
    plan_literals = {n: w for n, w in literals.items() if n.startswith("plan.")}
    expected = {
        "plan.shared_scans",
        "plan.shared_map_bytes_saved",
        "plan.map_outputs_published",
        "plan.map_outputs_retired",
        "plan.prefix_matches",
        "plan.unshareable",
    }
    assert expected <= set(plan_literals), (
        "plan counter emissions missing from the AST walk: "
        + ", ".join(sorted(expected - set(plan_literals)))
    )
    assert plan_literals["plan.prefix_matches"] == "src/repro/service/server.py"
    assert all(
        w.startswith(("src/repro/core/", "src/repro/service/"))
        for w in plan_literals.values()
    )

    documented, _ = _documented_tokens()
    doc_regexes = [_doc_token_regex(t) for t in documented]
    undocumented = {
        name
        for name in expected
        if not any(re.match(rx, name) for rx in doc_regexes)
    }
    assert not undocumented, (
        "plan counters not documented in docs/counters.md: "
        + ", ".join(sorted(undocumented))
    )


def test_documented_tables_match_code():
    literals, patterns = _emitted_counters()
    _, table = _documented_tokens()
    assert table, "docs/counters.md has no counter tables"
    emitted = set(literals)
    stale = set()
    for token in table:
        probe = re.sub(r"\{[a-z_]+\}", "0", token)
        if probe in emitted:
            continue
        if any(re.match(p, probe) for p in patterns):
            continue
        stale.add(token)
    assert not stale, (
        "documented counters with no emission site in src/: "
        + ", ".join(sorted(stale))
    )
